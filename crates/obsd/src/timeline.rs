//! The timeline plane: fixed-memory, multi-resolution telemetry history.
//!
//! Every point-in-time signal the daemon already aggregates — counters,
//! gauges, and log₂ latency histograms on the [`MetricSnapshot`] ticker —
//! is tailed here into **fixed-capacity ring buffers at three
//! resolutions** (1s, 10s, 60s), so "did p99 or accuracy degrade over the
//! last ten minutes?" is answerable from the process itself, without an
//! external scraper.
//!
//! ## Encoding
//!
//! * **counters** store per-interval *deltas* — deltas sum exactly, so
//!   any downsample or re-aggregation is exact, never an approximation;
//! * **gauges** store the last sampled level (downsampling keeps the most
//!   recent);
//! * **histograms** store per-interval *bucket deltas* plus count/sum —
//!   bucket deltas add, so merged frames have union quantiles (the same
//!   no-mean-of-means argument as [`LatencyHisto::merge`]).
//!
//! ## Downsample-on-evict
//!
//! The 1s ring does not silently forget: each frame it evicts is folded
//! into a staging frame, and every 10 evictions that staging frame is
//! pushed into the 10s ring; 10s evictions cascade into 60s the same way
//! (factor 6). Because the folds are the exact merges above, **every 10s
//! frame equals the merge of exactly the ten 1s frames it replaced**, and
//! every 60s frame the merge of six 10s frames — property-tested in
//! `tests/timeline_props.rs`. With the default capacity of 360 frames per
//! ring this retains 6 minutes at 1s, 1 hour at 10s, and 6 hours at 60s
//! in O(capacity × series) memory, allocated at registration and never
//! again (proven in `tests/timeline_alloc.rs`).
//!
//! ## Concurrency
//!
//! One claim word — the interior mutex, taken only with `try_lock` by
//! *everyone* — serializes access the same way the flight ring's
//! seqlock-style slot claims do: nobody ever blocks. The sampler (ticker)
//! skips a contended second entirely; because counter deltas are computed
//! against the last *successful* sample, the skipped second folds into
//! the next frame with nothing lost. Readers (scrape-path JSON renders)
//! retry briefly and copy frames out before rendering, so they hold the
//! claim for a memcpy, not a serialization.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mnc_obs::metrics::{bucket_of, NBUCKETS};
use mnc_obs::prometheus::split_labeled_name;
use mnc_obs::{LatencyHisto, MetricSnapshot};

use crate::slo::{SloConfig, SloEngine, SloSample, SloTransition, N_OBJECTIVES};

/// The three retention resolutions, coarsest last.
pub const RESOLUTIONS: [&str; 3] = ["1s", "10s", "60s"];
/// Eviction cascade factors: 10 × 1s → 10s, 6 × 10s → 60s.
const FACTORS: [u32; 2] = [10, 6];

/// Timeline sizing and the SLO objectives evaluated on top of it.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Whether the plane runs at all.
    pub enabled: bool,
    /// Frames retained per ring per resolution.
    pub capacity: usize,
    /// Most scalar (counter/gauge) series tracked; later registrations are
    /// counted in `dropped_series` and ignored.
    pub max_scalar_series: usize,
    /// Most histogram series tracked.
    pub max_histo_series: usize,
    /// SLO objectives and window geometry.
    pub slo: SloConfig,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            enabled: true,
            capacity: 360,
            max_scalar_series: 256,
            max_histo_series: 32,
            slo: SloConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Frames and rings
// ---------------------------------------------------------------------------

/// One scalar frame: counter delta or last gauge level over the interval
/// ending at `t_s` (unix seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarFrame {
    /// Unix second the interval ended.
    pub t_s: u64,
    /// Counter delta, or the gauge level at sample time.
    pub v: i64,
}

/// One histogram frame: bucket deltas over the interval ending at `t_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoFrame {
    /// Unix second the interval ended.
    pub t_s: u64,
    /// Observations in the interval.
    pub count: u64,
    /// Sum of observations in the interval (saturating).
    pub sum: u64,
    /// Largest observation seen *up to* the interval's end with a nonzero
    /// count (the source histogram's cumulative max — an upper bound for
    /// interval quantile clamping, exact whenever the max is recent).
    pub max: u64,
    /// Per-bucket observation deltas ([`bucket_of`] indexing).
    pub buckets: [u32; NBUCKETS],
}

impl Default for HistoFrame {
    fn default() -> Self {
        HistoFrame {
            t_s: 0,
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; NBUCKETS],
        }
    }
}

impl HistoFrame {
    /// Exact merge: buckets/count/sum add, max takes the max, the stamp
    /// takes the later interval end.
    pub fn merge(&mut self, other: &HistoFrame) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.t_s = self.t_s.max(other.t_s);
    }

    /// The `q`-quantile over this frame's bucket deltas (upper bucket
    /// bound, clamped to `max`); 0 when empty. Mirrors
    /// [`LatencyHisto::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += u64::from(c);
            if cum >= rank {
                return mnc_obs::metrics::bucket_upper_bound(k).min(self.max);
            }
        }
        self.max
    }
}

/// Fixed-capacity overwrite ring; `push` returns the evicted frame.
struct Ring<T> {
    buf: Box<[T]>,
    head: usize,
    len: usize,
}

impl<T: Copy + Default> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: vec![T::default(); capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, v: T) -> Option<T> {
        let cap = self.buf.len();
        if self.len < cap {
            self.buf[(self.head + self.len) % cap] = v;
            self.len += 1;
            None
        } else {
            let evicted = self.buf[self.head];
            self.buf[self.head] = v;
            self.head = (self.head + 1) % cap;
            Some(evicted)
        }
    }

    /// Frames oldest-first.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let cap = self.buf.len();
        (0..self.len).map(move |k| &self.buf[(self.head + k) % cap])
    }
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

/// How a scalar series contributes to SLO evaluation, decided once at
/// registration (label parsing never runs on the sampling path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SloClass {
    None,
    /// A `served.requests{...}` counter; `bad` when status is 5xx or 429.
    Request {
        bad: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalarKind {
    Counter,
    Gauge,
}

struct ScalarSeries {
    name: String,
    kind: ScalarKind,
    class: SloClass,
    /// Last raw counter value (deltas are computed against this).
    last_raw: u64,
    rings: [Ring<ScalarFrame>; 3],
    /// Downsample staging: evictions folding toward the next resolution.
    pending: [ScalarFrame; 2],
    pending_n: [u32; 2],
}

impl ScalarSeries {
    fn push(&mut self, frame: ScalarFrame) {
        let is_gauge = self.kind == ScalarKind::Gauge;
        let mut evicted = self.rings[0].push(frame);
        for (level, &factor) in FACTORS.iter().enumerate() {
            let Some(e) = evicted else { return };
            let p = &mut self.pending[level];
            if self.pending_n[level] == 0 {
                *p = e;
            } else {
                p.v = if is_gauge {
                    e.v
                } else {
                    p.v.saturating_add(e.v)
                };
                p.t_s = p.t_s.max(e.t_s);
            }
            self.pending_n[level] += 1;
            if self.pending_n[level] < factor {
                return;
            }
            let staged = *p;
            self.pending_n[level] = 0;
            evicted = self.rings[level + 1].push(staged);
        }
    }
}

struct HistoSeries {
    name: String,
    /// Whether this is the SLO latency objective's series.
    is_latency: bool,
    /// Last cumulative histogram (deltas are computed against this). The
    /// bucket array lives inline — replacing it never allocates.
    last: LatencyHisto,
    rings: [Ring<HistoFrame>; 3],
    pending: [HistoFrame; 2],
    pending_n: [u32; 2],
}

impl HistoSeries {
    fn push(&mut self, frame: HistoFrame) {
        let mut evicted = self.rings[0].push(frame);
        for (level, &factor) in FACTORS.iter().enumerate() {
            let Some(e) = evicted else { return };
            if self.pending_n[level] == 0 {
                self.pending[level] = e;
            } else {
                self.pending[level].merge(&e);
            }
            self.pending_n[level] += 1;
            if self.pending_n[level] < factor {
                return;
            }
            let staged = self.pending[level];
            self.pending_n[level] = 0;
            evicted = self.rings[level + 1].push(staged);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeriesRef {
    Scalar(usize),
    Histo(usize),
    /// Registration refused (series cap); remembered so the drop is
    /// counted once and never re-attempted.
    Dropped,
}

struct Inner {
    index: HashMap<String, SeriesRef>,
    scalars: Vec<ScalarSeries>,
    histos: Vec<HistoSeries>,
    last_sample_s: u64,
    samples: u64,
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

/// Lock-free summary for `/v1/status`.
#[derive(Debug, Clone, Copy)]
pub struct TimelineStats {
    /// Whether the plane runs.
    pub enabled: bool,
    /// Frames per ring per resolution.
    pub capacity: usize,
    /// Registered series (scalar + histogram).
    pub series: usize,
    /// Registrations refused at the series caps.
    pub dropped_series: u64,
    /// Successful sampling passes.
    pub samples: u64,
    /// Sampling passes skipped because a reader held the claim.
    pub contended_samples: u64,
    /// Frames currently retained per resolution (longest series).
    pub frames: [usize; 3],
}

/// A `/v1/debug/timeline` selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineQuery<'a> {
    /// Keep series whose metric name starts with this prefix.
    pub metric: Option<&'a str>,
    /// Keep one resolution (index into [`RESOLUTIONS`]).
    pub resolution: Option<usize>,
    /// Keep frames with `t_s > since` (unix seconds).
    pub since_s: u64,
}

/// The timeline plane. See the module docs.
pub struct Timeline {
    config: TimelineConfig,
    /// Threshold bucket for the latency objective (precomputed).
    latency_bad_above: usize,
    inner: Mutex<Inner>,
    slo: SloEngine,
    /// Fast-path gate: the ticker runs 4×/s but frames are 1/s.
    last_sample_s: AtomicU64,
    series_count: AtomicU64,
    dropped_series: AtomicU64,
    contended_samples: AtomicU64,
    samples: AtomicU64,
}

impl Timeline {
    /// A timeline per `config`; series storage is allocated lazily at
    /// registration, bounded by the configured caps.
    pub fn new(config: TimelineConfig) -> Self {
        let latency_bad_above = bucket_of(config.slo.latency_p99_ms.saturating_mul(1_000_000));
        let slo = SloEngine::new(config.slo.clone());
        Timeline {
            latency_bad_above,
            slo,
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                scalars: Vec::new(),
                histos: Vec::new(),
                last_sample_s: 0,
                samples: 0,
            }),
            last_sample_s: AtomicU64::new(0),
            series_count: AtomicU64::new(0),
            dropped_series: AtomicU64::new(0),
            contended_samples: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            config,
        }
    }

    /// Whether the plane runs.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The SLO engine riding this timeline.
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Tails one merged snapshot into the rings and evaluates the SLO
    /// engine. Gated to at most one frame per `now_s` second; a contended
    /// claim skips the pass (the skipped interval folds into the next
    /// frame's deltas — see the module docs). Returns SLO alert edges for
    /// the caller to stamp into the flight recorder.
    pub fn sample_at(
        &self,
        now_s: u64,
        snap: &MetricSnapshot,
        drift_degraded: bool,
    ) -> [Option<SloTransition>; N_OBJECTIVES] {
        const NO_EDGES: [Option<SloTransition>; N_OBJECTIVES] = [None; N_OBJECTIVES];
        if !self.config.enabled || now_s <= self.last_sample_s.load(Ordering::Relaxed) {
            return NO_EDGES;
        }
        let Ok(mut inner) = self.inner.try_lock() else {
            self.contended_samples.fetch_add(1, Ordering::Relaxed);
            return NO_EDGES;
        };
        if now_s <= inner.last_sample_s {
            return NO_EDGES;
        }
        inner.last_sample_s = now_s;
        self.last_sample_s.store(now_s, Ordering::Relaxed);

        let mut slo_sample = SloSample {
            drift_degraded,
            ..SloSample::default()
        };

        for (name, &raw) in &snap.counters {
            let Some(at) = self.resolve(&mut inner, name, ScalarKind::Counter) else {
                continue;
            };
            let s = &mut inner.scalars[at];
            let delta = raw.saturating_sub(s.last_raw);
            s.last_raw = raw;
            if let SloClass::Request { bad } = s.class {
                slo_sample.avail_total += delta;
                if bad {
                    slo_sample.avail_bad += delta;
                }
            }
            s.push(ScalarFrame {
                t_s: now_s,
                v: i64::try_from(delta).unwrap_or(i64::MAX),
            });
        }
        for (name, &level) in &snap.gauges {
            let Some(at) = self.resolve(&mut inner, name, ScalarKind::Gauge) else {
                continue;
            };
            inner.scalars[at].push(ScalarFrame {
                t_s: now_s,
                v: level,
            });
        }
        for (name, h) in &snap.histograms {
            let Some(at) = self.resolve_histo(&mut inner, name) else {
                continue;
            };
            let s = &mut inner.histos[at];
            let mut frame = HistoFrame {
                t_s: now_s,
                count: h.count().saturating_sub(s.last.count()),
                sum: h.sum().saturating_sub(s.last.sum()),
                max: 0,
                buckets: [0; NBUCKETS],
            };
            for (k, b) in frame.buckets.iter_mut().enumerate() {
                let d = h.buckets()[k].saturating_sub(s.last.buckets()[k]);
                *b = u32::try_from(d).unwrap_or(u32::MAX);
            }
            if frame.count > 0 {
                frame.max = h.max();
            }
            if s.is_latency {
                slo_sample.lat_total += frame.count;
                slo_sample.lat_bad += frame
                    .buckets
                    .iter()
                    .enumerate()
                    .skip(self.latency_bad_above + 1)
                    .map(|(_, &c)| u64::from(c))
                    .sum::<u64>();
            }
            s.last = h.clone();
            s.push(frame);
        }

        inner.samples += 1;
        self.samples.fetch_add(1, Ordering::Relaxed);
        // Release the claim before the engine takes its own (uncontended)
        // lock — readers blocked on us get in sooner.
        drop(inner);
        self.slo.observe(&slo_sample)
    }

    /// Index lookup with bounded, tombstoned registration.
    fn resolve(&self, inner: &mut Inner, name: &str, kind: ScalarKind) -> Option<usize> {
        match inner.index.get(name) {
            Some(SeriesRef::Scalar(i)) => return Some(*i),
            Some(_) => return None,
            None => {}
        }
        if inner.scalars.len() >= self.config.max_scalar_series {
            inner.index.insert(name.to_string(), SeriesRef::Dropped);
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let class = match kind {
            ScalarKind::Counter => classify_counter(name),
            ScalarKind::Gauge => SloClass::None,
        };
        let at = inner.scalars.len();
        inner.scalars.push(ScalarSeries {
            name: name.to_string(),
            kind,
            class,
            last_raw: 0,
            rings: std::array::from_fn(|_| Ring::new(self.config.capacity)),
            pending: [ScalarFrame::default(); 2],
            pending_n: [0; 2],
        });
        inner.index.insert(name.to_string(), SeriesRef::Scalar(at));
        self.series_count.fetch_add(1, Ordering::Relaxed);
        Some(at)
    }

    fn resolve_histo(&self, inner: &mut Inner, name: &str) -> Option<usize> {
        match inner.index.get(name) {
            Some(SeriesRef::Histo(i)) => return Some(*i),
            Some(_) => return None,
            None => {}
        }
        if inner.histos.len() >= self.config.max_histo_series {
            inner.index.insert(name.to_string(), SeriesRef::Dropped);
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let at = inner.histos.len();
        inner.histos.push(HistoSeries {
            name: name.to_string(),
            is_latency: name == self.config.slo.latency_metric,
            last: LatencyHisto::new(),
            rings: std::array::from_fn(|_| Ring::new(self.config.capacity)),
            pending: [HistoFrame::default(); 2],
            pending_n: [0; 2],
        });
        inner.index.insert(name.to_string(), SeriesRef::Histo(at));
        self.series_count.fetch_add(1, Ordering::Relaxed);
        Some(at)
    }

    /// Lock-free plane summary (frame counts claim briefly; on contention
    /// they read 0 rather than block).
    pub fn stats(&self) -> TimelineStats {
        let frames = match self.inner.try_lock() {
            Ok(inner) => {
                let mut frames = [0usize; 3];
                for (r, slot) in frames.iter_mut().enumerate() {
                    let s = inner.scalars.iter().map(|s| s.rings[r].len).max();
                    let h = inner.histos.iter().map(|s| s.rings[r].len).max();
                    *slot = s.unwrap_or(0).max(h.unwrap_or(0));
                }
                frames
            }
            Err(_) => [0; 3],
        };
        TimelineStats {
            enabled: self.config.enabled,
            capacity: self.config.capacity,
            series: self.series_count.load(Ordering::Relaxed) as usize,
            dropped_series: self.dropped_series.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            contended_samples: self.contended_samples.load(Ordering::Relaxed),
            frames,
        }
    }

    /// Contributes the plane's own series — `slo.*` and `timeline.*` — to
    /// the daemon's service snapshot (whence `/metrics` renders them as
    /// `mnc_slo_*` / `mnc_timeline_*`).
    pub fn contribute_metrics(&self, snap: &mut MetricSnapshot) {
        if !self.config.enabled {
            return;
        }
        snap.counters
            .insert("slo.burn_alerts".into(), self.slo.alerts_total());
        for o in self.slo.readout() {
            if !o.enabled {
                continue;
            }
            let milli = |v: f64| (v * 1000.0).min(i64::MAX as f64) as i64;
            let labels = format!("{{objective={}}}", o.name);
            snap.gauges
                .insert(format!("slo.firing{labels}"), i64::from(o.firing));
            snap.gauges
                .insert(format!("slo.burn_fast_milli{labels}"), milli(o.burn_fast));
            snap.gauges
                .insert(format!("slo.burn_slow_milli{labels}"), milli(o.burn_slow));
            snap.gauges.insert(
                format!("slo.budget_remaining_milli{labels}"),
                milli(o.budget_remaining),
            );
        }
        snap.counters.insert(
            "timeline.samples".into(),
            self.samples.load(Ordering::Relaxed),
        );
        snap.counters.insert(
            "timeline.contended_samples".into(),
            self.contended_samples.load(Ordering::Relaxed),
        );
        snap.gauges.insert(
            "timeline.series".into(),
            self.series_count.load(Ordering::Relaxed) as i64,
        );
        snap.gauges.insert(
            "timeline.dropped_series".into(),
            self.dropped_series.load(Ordering::Relaxed) as i64,
        );
    }

    /// The `GET /v1/debug/timeline` body (`mnc.timeline.v1`): matched
    /// series with their frames, plus the SLO readout. Returns `None`
    /// only when the claim stayed contended through every retry.
    pub fn render_json(&self, now_s: u64, query: &TimelineQuery) -> Option<String> {
        #[allow(clippy::type_complexity)]
        let copied: Option<(
            Vec<(String, &'static str, usize, Vec<ScalarFrame>)>,
            Vec<(String, usize, Vec<HistoFrame>)>,
        )> = {
            // Bounded claim retries; each miss yields the CPU briefly so a
            // mid-sample writer can finish.
            let mut inner = None;
            for _ in 0..64 {
                match self.inner.try_lock() {
                    Ok(g) => {
                        inner = Some(g);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                }
            }
            let inner = inner?;
            let keep_name = |name: &str| query.metric.is_none_or(|m| name.starts_with(m));
            let keep_res = |r: usize| query.resolution.is_none_or(|want| want == r);
            let mut scalars = Vec::new();
            for s in &inner.scalars {
                if !keep_name(&s.name) {
                    continue;
                }
                for r in 0..3 {
                    if !keep_res(r) {
                        continue;
                    }
                    let frames: Vec<ScalarFrame> = s.rings[r]
                        .iter()
                        .filter(|f| f.t_s > query.since_s)
                        .copied()
                        .collect();
                    let kind = match s.kind {
                        ScalarKind::Counter => "counter",
                        ScalarKind::Gauge => "gauge",
                    };
                    scalars.push((s.name.clone(), kind, r, frames));
                }
            }
            let mut histos = Vec::new();
            for s in &inner.histos {
                if !keep_name(&s.name) {
                    continue;
                }
                for r in 0..3 {
                    if !keep_res(r) {
                        continue;
                    }
                    let frames: Vec<HistoFrame> = s.rings[r]
                        .iter()
                        .filter(|f| f.t_s > query.since_s)
                        .copied()
                        .collect();
                    histos.push((s.name.clone(), r, frames));
                }
            }
            Some((scalars, histos))
        };
        let (scalars, histos) = copied?;

        // Claim released: render at leisure.
        let mut series = Vec::new();
        for (name, kind, r, frames) in scalars {
            let body: Vec<String> = frames
                .iter()
                .map(|f| format!("{{\"t_s\":{},\"v\":{}}}", f.t_s, f.v))
                .collect();
            series.push(format!(
                "{{\"metric\":\"{}\",\"kind\":\"{}\",\"resolution\":\"{}\",\"frames\":[{}]}}",
                json_escape(&name),
                kind,
                RESOLUTIONS[r],
                body.join(",")
            ));
        }
        for (name, r, frames) in histos {
            let body: Vec<String> = frames
                .iter()
                .map(|f| {
                    format!(
                        "{{\"t_s\":{},\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                        f.t_s,
                        f.count,
                        f.sum,
                        f.max,
                        f.quantile(0.5),
                        f.quantile(0.99)
                    )
                })
                .collect();
            series.push(format!(
                "{{\"metric\":\"{}\",\"kind\":\"histogram\",\"resolution\":\"{}\",\"frames\":[{}]}}",
                json_escape(&name),
                RESOLUTIONS[r],
                body.join(",")
            ));
        }

        Some(format!(
            "{{\"schema\":\"mnc.timeline.v1\",\"now_s\":{},\"capacity\":{},\
             \"resolutions\":[\"1s\",\"10s\",\"60s\"],\"dropped_series\":{},\
             \"series\":[{}],\"slo\":{}}}",
            now_s,
            self.config.capacity,
            self.dropped_series.load(Ordering::Relaxed),
            series.join(","),
            self.slo_json(),
        ))
    }

    /// The SLO readout as a JSON object (shared by the timeline body and
    /// `/v1/status`).
    pub fn slo_json(&self) -> String {
        let objectives: Vec<String> = self
            .slo
            .readout()
            .iter()
            .filter(|o| o.enabled)
            .map(|o| {
                format!(
                    "{{\"name\":\"{}\",\"target\":{},\"firing\":{},\"burn_fast\":{},\
                     \"burn_slow\":{},\"budget_remaining\":{}}}",
                    o.name,
                    self.slo.config().target(
                        crate::slo::OBJECTIVES
                            .iter()
                            .position(|n| *n == o.name)
                            .unwrap_or(0)
                    ),
                    o.firing,
                    o.burn_fast,
                    o.burn_slow,
                    o.budget_remaining
                )
            })
            .collect();
        format!(
            "{{\"alerts_total\":{},\"fast_window_s\":{},\"slow_window_s\":{},\"objectives\":[{}]}}",
            self.slo.alerts_total(),
            self.slo.config().fast_window_s,
            self.slo.config().slow_window_s,
            objectives.join(",")
        )
    }
}

/// `served.requests{...}` counters feed the availability objective; the
/// status label decides good vs bad (5xx and 429 burn budget).
fn classify_counter(name: &str) -> SloClass {
    if !name.starts_with("served.requests{") {
        return SloClass::None;
    }
    let (_, labels) = split_labeled_name(name);
    // Only API traffic counts toward availability. Telemetry endpoints are
    // excluded deliberately: `/healthz` answers 503 *because* an objective
    // is firing, and counting those probes as bad availability would wedge
    // the alert permanently — the health checker's polling itself would
    // keep the availability burn above the recovery threshold.
    if !labels
        .iter()
        .find(|(k, _)| *k == "endpoint")
        .is_some_and(|(_, v)| v.starts_with("/v1"))
    {
        return SloClass::None;
    }
    let bad = labels
        .iter()
        .find(|(k, _)| *k == "status")
        .is_some_and(|(_, v)| v.starts_with('5') || *v == "429");
    SloClass::Request { bad }
}

fn json_escape(s: &str) -> String {
    mnc_obs::export::json_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counter: u64, gauge: i64, histo: &[u64]) -> MetricSnapshot {
        let mut s = MetricSnapshot::default();
        s.counters.insert("c.total".into(), counter);
        s.gauges.insert("g.level".into(), gauge);
        let mut h = LatencyHisto::new();
        for &v in histo {
            h.record(v);
        }
        s.histograms.insert("h.lat".into(), h);
        s
    }

    fn timeline(capacity: usize) -> Timeline {
        Timeline::new(TimelineConfig {
            capacity,
            ..TimelineConfig::default()
        })
    }

    #[test]
    fn counters_store_deltas_and_gauges_store_levels() {
        let tl = timeline(8);
        tl.sample_at(1, &snap(10, 5, &[]), false);
        tl.sample_at(2, &snap(25, -3, &[]), false);
        tl.sample_at(3, &snap(25, 7, &[]), false);
        let body = tl
            .render_json(3, &TimelineQuery::default())
            .expect("uncontended");
        let v = mnc_obs::json::parse(&body).expect("valid json");
        let mnc_obs::json::JsonValue::Array(series) = v.get("series").unwrap() else {
            panic!("series must be an array");
        };
        let frames_of = |metric: &str, res: &str| -> Vec<(u64, i64)> {
            series
                .iter()
                .find(|s| {
                    s.get("metric").and_then(|m| m.as_str()) == Some(metric)
                        && s.get("resolution").and_then(|r| r.as_str()) == Some(res)
                })
                .map(|s| {
                    let mnc_obs::json::JsonValue::Array(fr) = s.get("frames").unwrap() else {
                        panic!("frames must be an array");
                    };
                    fr.iter()
                        .map(|f| {
                            (
                                f.get("t_s").and_then(|t| t.as_f64()).unwrap() as u64,
                                f.get("v").and_then(|t| t.as_f64()).unwrap() as i64,
                            )
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        // First frame's delta is against 0 (registration baseline).
        assert_eq!(frames_of("c.total", "1s"), vec![(1, 10), (2, 15), (3, 0)]);
        assert_eq!(frames_of("g.level", "1s"), vec![(1, 5), (2, -3), (3, 7)]);
    }

    #[test]
    fn second_gate_and_monotone_clock() {
        let tl = timeline(8);
        assert_eq!(tl.stats().samples, 0);
        tl.sample_at(5, &snap(1, 0, &[]), false);
        tl.sample_at(5, &snap(2, 0, &[]), false); // same second: skipped
        tl.sample_at(4, &snap(3, 0, &[]), false); // clock going backwards: skipped
        assert_eq!(tl.stats().samples, 1);
        tl.sample_at(6, &snap(9, 0, &[]), false);
        assert_eq!(tl.stats().samples, 2);
        // The skipped samples folded into the next delta: 9 - 1 = 8.
        let body = tl.render_json(6, &TimelineQuery::default()).unwrap();
        assert!(body.contains("{\"t_s\":6,\"v\":8}"), "{body}");
    }

    #[test]
    fn downsample_cascade_is_exact() {
        // Capacity 4: pushing 4 + 40 frames overflows the 1s ring 40 times
        // → four 10s frames; their values must equal the sums of the
        // corresponding 1s deltas.
        let tl = timeline(4);
        let mut total = 0u64;
        for t in 1..=44u64 {
            total += t; // delta at second t is t
            tl.sample_at(t, &snap(total, t as i64, &[t]), false);
        }
        let body = tl.render_json(44, &TimelineQuery::default()).unwrap();
        let v = mnc_obs::json::parse(&body).unwrap();
        let mnc_obs::json::JsonValue::Array(series) = v.get("series").unwrap() else {
            panic!()
        };
        let c10: Vec<i64> = series
            .iter()
            .find(|s| {
                s.get("metric").and_then(|m| m.as_str()) == Some("c.total")
                    && s.get("resolution").and_then(|r| r.as_str()) == Some("10s")
            })
            .map(|s| {
                let mnc_obs::json::JsonValue::Array(fr) = s.get("frames").unwrap() else {
                    panic!()
                };
                fr.iter()
                    .map(|f| f.get("v").unwrap().as_f64().unwrap() as i64)
                    .collect()
            })
            .unwrap();
        // Evictions start at push 5 (second 5): 10s frames cover seconds
        // 1..=10, 11..=20, 21..=30, 31..=40.
        assert_eq!(
            c10,
            vec![
                (1..=10).sum::<i64>(),
                (11..=20).sum(),
                (21..=30).sum(),
                (31..=40).sum()
            ]
        );
    }

    #[test]
    fn histogram_frames_are_bucket_deltas_with_quantiles() {
        let tl = timeline(8);
        tl.sample_at(1, &snap(0, 0, &[100; 50]), false);
        // Second 2 adds one slow observation on top.
        let mut all: Vec<u64> = vec![100; 50];
        all.push(1_000_000);
        tl.sample_at(2, &snap(0, 0, &all), false);
        let body = tl
            .render_json(
                2,
                &TimelineQuery {
                    metric: Some("h.lat"),
                    resolution: Some(0),
                    since_s: 0,
                },
            )
            .unwrap();
        let v = mnc_obs::json::parse(&body).unwrap();
        let mnc_obs::json::JsonValue::Array(series) = v.get("series").unwrap() else {
            panic!()
        };
        assert_eq!(series.len(), 1);
        let mnc_obs::json::JsonValue::Array(frames) = series[0].get("frames").unwrap() else {
            panic!()
        };
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].get("count").unwrap().as_f64(), Some(50.0));
        assert_eq!(frames[1].get("count").unwrap().as_f64(), Some(1.0));
        // The interval's p99 reflects only the delta: the slow observation.
        assert_eq!(frames[1].get("p99").unwrap().as_f64(), Some(1_000_000.0));
    }

    #[test]
    fn query_filters_metric_resolution_and_since() {
        let tl = timeline(8);
        for t in 1..=6u64 {
            tl.sample_at(t, &snap(t, 0, &[]), false);
        }
        let body = tl
            .render_json(
                6,
                &TimelineQuery {
                    metric: Some("c."),
                    resolution: Some(0),
                    since_s: 4,
                },
            )
            .unwrap();
        assert!(body.contains("c.total"), "{body}");
        assert!(!body.contains("g.level"), "{body}");
        assert!(!body.contains("\"t_s\":4"), "{body}");
        assert!(body.contains("\"t_s\":5"), "{body}");
        assert!(body.contains("\"t_s\":6"), "{body}");
    }

    #[test]
    fn series_caps_tombstone_and_count_drops() {
        let tl = Timeline::new(TimelineConfig {
            capacity: 4,
            max_scalar_series: 2,
            max_histo_series: 1,
            ..TimelineConfig::default()
        });
        let mut s = MetricSnapshot::default();
        for i in 0..5 {
            s.counters.insert(format!("c{i}"), 1);
        }
        for i in 0..3 {
            s.histograms.insert(format!("h{i}"), LatencyHisto::new());
        }
        tl.sample_at(1, &s, false);
        tl.sample_at(2, &s, false);
        let stats = tl.stats();
        assert_eq!(stats.series, 3, "2 scalars + 1 histo");
        assert_eq!(stats.dropped_series, 5, "3 counters + 2 histos refused");
    }

    #[test]
    fn disabled_timeline_is_inert() {
        let tl = Timeline::new(TimelineConfig {
            enabled: false,
            ..TimelineConfig::default()
        });
        let edges = tl.sample_at(1, &snap(1, 1, &[1]), true);
        assert!(edges.iter().all(Option::is_none));
        assert_eq!(tl.stats().samples, 0);
        assert_eq!(tl.stats().series, 0);
    }

    #[test]
    fn availability_classification_feeds_the_slo_engine() {
        let cfg = TimelineConfig {
            capacity: 32,
            slo: SloConfig {
                availability_target: 0.99,
                fast_window_s: 3,
                slow_window_s: 6,
                min_events: 5,
                ..SloConfig::default()
            },
            ..TimelineConfig::default()
        };
        let tl = Timeline::new(cfg);
        let mk = |ok: u64, bad: u64| {
            let mut s = MetricSnapshot::default();
            s.counters.insert(
                "served.requests{endpoint=/v1/estimate,method=POST,status=200}".into(),
                ok,
            );
            s.counters.insert(
                "served.requests{endpoint=/v1/estimate,method=POST,status=503}".into(),
                bad,
            );
            s
        };
        let mut tripped = false;
        let (mut ok, mut bad) = (0u64, 0u64);
        for t in 1..=12u64 {
            ok += 2;
            bad += 8;
            let edges = tl.sample_at(t, &mk(ok, bad), false);
            tripped |= edges.iter().flatten().any(|e| e.objective == 0 && e.fired);
        }
        assert!(tripped, "80% failure never tripped availability");
        assert!(tl.slo().any_firing());
        assert_eq!(tl.slo().alerts_total(), 1);
        // The readout and metrics contribution see the alert.
        let mut m = MetricSnapshot::default();
        tl.contribute_metrics(&mut m);
        assert_eq!(m.counters["slo.burn_alerts"], 1);
        assert_eq!(m.gauges["slo.firing{objective=availability}"], 1);
    }

    #[test]
    fn status_label_classification() {
        assert_eq!(
            classify_counter("served.requests{endpoint=/v1/x,method=GET,status=200}"),
            SloClass::Request { bad: false }
        );
        assert_eq!(
            classify_counter("served.requests{endpoint=/v1/x,method=GET,status=503}"),
            SloClass::Request { bad: true }
        );
        assert_eq!(
            classify_counter("served.requests{endpoint=/v1/x,method=GET,status=429}"),
            SloClass::Request { bad: true }
        );
        assert_eq!(
            classify_counter("served.requests{endpoint=/v1/x,method=GET,status=404}"),
            SloClass::Request { bad: false }
        );
        // Telemetry endpoints never feed availability: a degraded /healthz
        // answers 503 because an alert is firing, and those probes counting
        // as bad traffic would make the alert self-sustaining.
        assert_eq!(
            classify_counter("served.requests{endpoint=/healthz,method=GET,status=503}"),
            SloClass::None
        );
        assert_eq!(
            classify_counter("served.requests{endpoint=/metrics,method=GET,status=200}"),
            SloClass::None
        );
        assert_eq!(classify_counter("cache.hits"), SloClass::None);
    }
}
