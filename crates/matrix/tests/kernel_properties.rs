//! Property-based tests of the matrix kernels' algebraic identities.

use proptest::prelude::*;
use rand::SeedableRng;

use mnc_matrix::{gen, io, ops, CsrMatrix};

fn make(rows: usize, cols: usize, s: f64, seed: u64) -> CsrMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    gen::rand_uniform(&mut rng, rows, cols, s)
}

fn params() -> impl Strategy<Value = (usize, usize, f64, u64)> {
    (1usize..25, 1usize..25, 0.0f64..0.6, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Boolean matrix products are associative on patterns (no
    /// cancellation in boolean semantics).
    #[test]
    fn bool_matmul_is_associative(
        (m, n, s, seed) in params(),
        k in 1usize..20,
        l in 1usize..20,
        s2 in 0.0f64..0.5,
        s3 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, k, s2, seed ^ 1);
        let c = make(k, l, s3, seed ^ 2);
        let left = ops::bool_matmul(&ops::bool_matmul(&a, &b).unwrap(), &c).unwrap();
        let right = ops::bool_matmul(&a, &ops::bool_matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(left.same_pattern(&right));
    }

    /// Transpose distributes over products: `(A B)ᵀ = Bᵀ Aᵀ` (patterns and
    /// values).
    #[test]
    fn transpose_of_product(
        (m, n, s, seed) in params(),
        k in 1usize..20,
        s2 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, k, s2, seed ^ 3);
        let lhs = ops::matmul(&a, &b).unwrap().transpose();
        let rhs = ops::matmul(&b.transpose(), &a.transpose()).unwrap();
        prop_assert!(lhs.same_pattern(&rhs));
        for ((_, _, va), (_, _, vb)) in lhs.iter_triples().zip(rhs.iter_triples()) {
            prop_assert!((va - vb).abs() < 1e-9);
        }
    }

    /// Element-wise operations are commutative.
    #[test]
    fn elementwise_commutativity((m, n, s, seed) in params(), s2 in 0.0f64..0.6) {
        let a = make(m, n, s, seed);
        let b = make(m, n, s2, seed ^ 4);
        prop_assert_eq!(ops::ew_add(&a, &b).unwrap(), ops::ew_add(&b, &a).unwrap());
        prop_assert_eq!(ops::ew_mul(&a, &b).unwrap(), ops::ew_mul(&b, &a).unwrap());
        prop_assert_eq!(ops::ew_max(&a, &b).unwrap(), ops::ew_max(&b, &a).unwrap());
        prop_assert_eq!(ops::ew_min(&a, &b).unwrap(), ops::ew_min(&b, &a).unwrap());
    }

    /// rbind/cbind respect transpose duality: `rbind(A,B)ᵀ = cbind(Aᵀ,Bᵀ)`.
    #[test]
    fn bind_transpose_duality(
        (m, n, s, seed) in params(),
        m2 in 1usize..20,
        s2 in 0.0f64..0.6,
    ) {
        let a = make(m, n, s, seed);
        let b = make(m2, n, s2, seed ^ 5);
        let lhs = ops::rbind(&a, &b).unwrap().transpose();
        let rhs = ops::cbind(&a.transpose(), &b.transpose()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// `diag(v)·X` scales rows: pattern of X preserved where v is non-zero.
    #[test]
    fn diag_product_scales_rows((m, n, s, seed) in params()) {
        let x = make(m, n, s, seed);
        let d = gen::scalar_diag(m.max(1), 2.0);
        if m > 0 {
            let y = ops::matmul(&d, &x).unwrap();
            prop_assert!(y.same_pattern(&x));
            for ((_, _, vy), (_, _, vx)) in y.iter_triples().zip(x.iter_triples()) {
                prop_assert!((vy - 2.0 * vx).abs() < 1e-12);
            }
        }
    }

    /// MatrixMarket round-trips any generated matrix.
    #[test]
    fn matrix_market_roundtrip((m, n, s, seed) in params()) {
        let a = make(m, n, s, seed);
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let back = io::read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, a);
    }

    /// Aggregation identities: `sum = Σ rowSums = Σ colSums`.
    #[test]
    fn aggregation_identities((m, n, s, seed) in params()) {
        let a = make(m, n, s, seed);
        let total = ops::sum(&a);
        let by_rows = ops::sum(&ops::row_sums(&a));
        let by_cols = ops::sum(&ops::col_sums(&a));
        prop_assert!((total - by_rows).abs() < 1e-9);
        prop_assert!((total - by_cols).abs() < 1e-9);
    }

    /// Row-partitioning is lossless for any partition count.
    #[test]
    fn partition_roundtrip_property((m, n, s, seed) in params(), parts in 1usize..10) {
        let a = make(m, n, s, seed);
        let pm = mnc_matrix::partition::RowPartitionedMatrix::from_matrix(&a, parts);
        prop_assert_eq!(pm.to_csr(), a);
    }

    /// Permutations are invertible: `Pᵀ (P X) = X`.
    #[test]
    fn permutation_inverse((m, n, s, seed) in params()) {
        let x = make(m, n, s, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 6);
        let p = gen::permutation(&mut rng, m.max(1));
        if m > 0 {
            let back = ops::matmul(&p.transpose(), &ops::matmul(&p, &x).unwrap()).unwrap();
            prop_assert_eq!(back, x);
        }
    }
}
