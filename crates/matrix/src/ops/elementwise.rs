//! Element-wise (Hadamard) operations: `A + B` and `A ⊙ B`.
//!
//! Both kernels are sorted-merge joins over each row pair, `O(nnz(A) +
//! nnz(B))` time.

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};

fn check_same_shape(op: &'static str, a: &CsrMatrix, b: &CsrMatrix) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// Element-wise addition `C = A + B`.
///
/// Cells where the sum cancels to exactly zero are dropped (they are real
/// zeros, not stored ones).
pub fn ew_add(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_same_shape("ew_add", a, b)?;
    let (m, n) = a.shape();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values: Vec<f64> = Vec::with_capacity(a.nnz() + b.nnz());

    for i in 0..m {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let (c, v) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                let out = (ac[p], av[p]);
                p += 1;
                out
            } else if p >= ac.len() || bc[q] < ac[p] {
                let out = (bc[q], bv[q]);
                q += 1;
                out
            } else {
                let out = (ac[p], av[p] + bv[q]);
                p += 1;
                q += 1;
                out
            };
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, n, row_ptr, col_idx, values,
    ))
}

/// Element-wise multiplication `C = A ⊙ B` (intersection of patterns).
pub fn ew_mul(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_same_shape("ew_mul", a, b)?;
    let (m, n) = a.shape();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    for i in 0..m {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            if ac[p] < bc[q] {
                p += 1;
            } else if bc[q] < ac[p] {
                q += 1;
            } else {
                let v = av[p] * bv[q];
                if v != 0.0 {
                    col_idx.push(ac[p]);
                    values.push(v);
                }
                p += 1;
                q += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, n, row_ptr, col_idx, values,
    ))
}

/// Element-wise maximum `C_ij = max(A_ij, B_ij)`, with absent entries
/// treated as zero (so `max(-2, ·absent·) = 0` is dropped). Under
/// assumption A1 (positive values) the result pattern is the union —
/// the paper's spatial-processing pattern where `max` replaces `∨`.
pub fn ew_max(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    merge_extremum("ew_max", a, b, f64::max)
}

/// Element-wise minimum with absent entries treated as zero; under A1 the
/// result pattern is the intersection.
pub fn ew_min(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    merge_extremum("ew_min", a, b, f64::min)
}

fn merge_extremum(
    op: &'static str,
    a: &CsrMatrix,
    b: &CsrMatrix,
    f: impl Fn(f64, f64) -> f64,
) -> Result<CsrMatrix> {
    check_same_shape(op, a, b)?;
    let (m, n) = a.shape();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for i in 0..m {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let (c, v) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                let out = (ac[p], f(av[p], 0.0));
                p += 1;
                out
            } else if p >= ac.len() || bc[q] < ac[p] {
                let out = (bc[q], f(bv[q], 0.0));
                q += 1;
                out
            } else {
                let out = (ac[p], f(av[p], bv[q]));
                p += 1;
                q += 1;
                out
            };
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, n, row_ptr, col_idx, values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    fn dense_check(
        op: impl Fn(&CsrMatrix, &CsrMatrix) -> Result<CsrMatrix>,
        f: impl Fn(f64, f64) -> f64,
        seed: u64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gen::rand_uniform(&mut rng, 17, 23, 0.25);
        let b = gen::rand_uniform(&mut rng, 17, 23, 0.4);
        let c = op(&a, &b).unwrap();
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..17 {
            for j in 0..23 {
                let expect = f(da[(i, j)], db[(i, j)]);
                assert!(
                    (dc[(i, j)] - expect).abs() < 1e-12,
                    "mismatch at ({i},{j}): {} vs {}",
                    dc[(i, j)],
                    expect
                );
            }
        }
    }

    #[test]
    fn add_matches_dense() {
        dense_check(ew_add, |x, y| x + y, 11);
    }

    #[test]
    fn mul_matches_dense() {
        dense_check(ew_mul, |x, y| x * y, 13);
    }

    #[test]
    fn add_cancellation_dropped() {
        let a = CsrMatrix::from_triples(1, 2, vec![(0, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triples(1, 2, vec![(0, 0, -1.0), (0, 1, 2.0)]).unwrap();
        let c = ew_add(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), 2.0);
    }

    #[test]
    fn mul_is_pattern_intersection() {
        let a = CsrMatrix::from_triples(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triples(2, 2, vec![(0, 0, 4.0), (1, 0, 5.0)]).unwrap();
        let c = ew_mul(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 8.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(2, 3);
        assert!(ew_add(&a, &b).is_err());
        assert!(ew_mul(&a, &b).is_err());
    }

    #[test]
    fn max_matches_dense() {
        dense_check(ew_max, f64::max, 17);
    }

    #[test]
    fn min_matches_dense() {
        dense_check(ew_min, f64::min, 19);
    }

    #[test]
    fn max_with_negative_values_drops_zeros() {
        // max(-2, absent) = max(-2, 0) = 0 -> dropped.
        let a = CsrMatrix::from_triples(1, 3, vec![(0, 0, -2.0), (0, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triples(1, 3, vec![(0, 2, -5.0)]).unwrap();
        let c = ew_max(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), 3.0);
        // min keeps the negatives instead.
        let d = ew_min(&a, &b).unwrap();
        assert_eq!(d.get(0, 0), -2.0);
        assert_eq!(d.get(0, 2), -5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn positive_max_is_union_min_is_intersection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let a = gen::rand_uniform(&mut rng, 20, 20, 0.3);
        let b = gen::rand_uniform(&mut rng, 20, 20, 0.25);
        let mx = ew_max(&a, &b).unwrap();
        let mn = ew_min(&a, &b).unwrap();
        assert!(mx.same_pattern(&ew_add(&a, &b).unwrap()));
        assert!(mn.same_pattern(&ew_mul(&a, &b).unwrap()));
    }

    #[test]
    fn add_with_empty_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = gen::rand_uniform(&mut rng, 10, 10, 0.3);
        let z = CsrMatrix::zeros(10, 10);
        assert_eq!(ew_add(&a, &z).unwrap(), a);
        assert_eq!(ew_mul(&a, &z).unwrap().nnz(), 0);
    }
}
