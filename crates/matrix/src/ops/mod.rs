//! Exact kernels for the operations covered by the paper's estimators.
//!
//! * [`product`] — matrix product (Gustavson SpGEMM) and the pattern-only
//!   boolean product that defines ground-truth output sparsity under
//!   assumptions A1/A2.
//! * [`elementwise`] — element-wise addition and multiplication.
//! * [`reorg`] — reorganization operations: row-wise reshape, `diag`,
//!   `rbind`/`cbind`, and the `==0` / `!=0` comparisons.
//!   (Transpose lives on [`CsrMatrix`](crate::CsrMatrix) itself.)

pub mod agg;
pub mod elementwise;
pub mod product;
pub mod reorg;

pub use agg::{col_sums, row_maxs, row_sums, sum};
pub use elementwise::{ew_add, ew_max, ew_min, ew_mul};
pub use product::{bool_matmul, matmul};
pub use reorg::{cbind, diag_extract, diag_v2m, eq_zero, neq_zero, rbind, reshape};
