//! Sparse matrix product kernels (Gustavson's algorithm).
//!
//! `matmul` computes numeric values; `bool_matmul` computes only the
//! non-zero pattern, which — under assumptions A1 (no cancellation) and A2
//! (no NaNs) — has the same pattern as the numeric product and defines the
//! ground-truth output sparsity the estimators are judged against.

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};

fn check_dims(op: &'static str, a: &CsrMatrix, b: &CsrMatrix) -> Result<()> {
    if a.ncols() != b.nrows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// Numeric sparse product `C = A B` via Gustavson's row-wise algorithm with a
/// dense accumulator, `O(flops + m + l)` time.
///
/// Exact zeros produced by cancellation are dropped from the output, so the
/// result always satisfies the CSR invariants.
pub fn matmul(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_dims("matmul", a, b)?;
    let (m, l) = (a.nrows(), b.ncols());
    let mut acc = vec![0.0f64; l];
    let mut touched: Vec<u32> = Vec::new();

    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    for i in 0..m {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                let cell = &mut acc[j as usize];
                if *cell == 0.0 {
                    touched.push(j);
                }
                *cell += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = acc[j as usize];
            // `v` may be exactly zero after cancellation or may have been
            // touched twice and re-zeroed; keep only true non-zeros.
            if v != 0.0 {
                col_idx.push(j);
                values.push(v);
            }
            acc[j as usize] = 0.0;
        }
        touched.clear();
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, l, row_ptr, col_idx, values,
    ))
}

/// Pattern-only boolean product: `C_ij = 1` iff row `i` of `A` and column `j`
/// of `B` share at least one non-zero position.
///
/// This is the ground truth the paper's estimators target (`s_C` of
/// `(A != 0)(B != 0)`), and is cheaper than `matmul` because each output cell
/// is set at most once.
pub fn bool_matmul(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_dims("bool_matmul", a, b)?;
    let (m, l) = (a.nrows(), b.ncols());
    let mut seen = vec![false; l];
    let mut touched: Vec<u32> = Vec::new();

    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();

    for i in 0..m {
        let (a_cols, _) = a.row(i);
        for &k in a_cols {
            let (b_cols, _) = b.row(k as usize);
            for &j in b_cols {
                if !seen[j as usize] {
                    seen[j as usize] = true;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        col_idx.extend_from_slice(&touched);
        for &j in &touched {
            seen[j as usize] = false;
        }
        touched.clear();
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; col_idx.len()];
    Ok(CsrMatrix::from_parts_unchecked(
        m, l, row_ptr, col_idx, values,
    ))
}

/// Number of scalar multiplications a sparse product would execute:
/// `Σ_k h^c_A[k] · h^r_B[k]` — the sparsity-aware cost used by the optimizer
/// of Appendix C.
pub fn matmul_flops(a: &CsrMatrix, b: &CsrMatrix) -> Result<u64> {
    check_dims("matmul_flops", a, b)?;
    let col_counts = crate::stats::col_nnz_counts(a);
    let mut flops = 0u64;
    for (k, &ca) in col_counts.iter().enumerate() {
        flops += ca as u64 * b.row_nnz(k) as u64;
    }
    Ok(flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn small_product_matches_dense() {
        let a = CsrMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triples(3, 2, vec![(0, 1, 4.0), (1, 0, 5.0), (2, 1, 6.0)]).unwrap();
        let c = matmul(&a, &b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        assert!(bool_matmul(&a, &b).is_err());
        assert!(matmul_flops(&a, &b).is_err());
    }

    #[test]
    fn bool_product_pattern_matches_numeric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = gen::rand_uniform(&mut rng, 40, 30, 0.1);
        let b = gen::rand_uniform(&mut rng, 30, 50, 0.15);
        let c = matmul(&a, &b).unwrap();
        let cb = bool_matmul(&a, &b).unwrap();
        // Positive values -> no cancellation -> identical patterns.
        assert!(cb.same_pattern(&c));
    }

    #[test]
    fn cancellation_dropped_from_numeric_product() {
        // a = [1 1], b = [[1],[-1]] -> product is exactly 0.
        let a = CsrMatrix::from_triples(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b = CsrMatrix::from_triples(2, 1, vec![(0, 0, 1.0), (1, 0, -1.0)]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        // The boolean product still reports a structural non-zero (A1 view).
        let cb = bool_matmul(&a, &b).unwrap();
        assert_eq!(cb.nnz(), 1);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = gen::rand_uniform(&mut rng, 20, 20, 0.2);
        let i = CsrMatrix::identity(20);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn flops_count_matches_definition() {
        let a = CsrMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 1.0)]).unwrap();
        // Column 0 of A has 2 nnz, row 0 of B has 2 nnz -> 4 multiplications.
        assert_eq!(matmul_flops(&a, &b).unwrap(), 4);
    }

    #[test]
    fn product_with_empty_matrix() {
        let a = CsrMatrix::zeros(4, 5);
        let b = CsrMatrix::zeros(5, 3);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (4, 3));
        assert_eq!(c.nnz(), 0);
    }
}
