//! Aggregation kernels: `rowSums`, `colSums`, `sum`, and their indicator
//! variants — the vocabulary the paper defines the MNC sketch in
//! (`h^r = rowSums(A != 0)`, `h^c = colSums(A != 0)`, Section 3.1).

use crate::csr::CsrMatrix;

/// `rowSums(A)`: per-row value sums as an `m x 1` column vector.
pub fn row_sums(a: &CsrMatrix) -> CsrMatrix {
    let m = a.nrows();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..m {
        let (_, vals) = a.row(i);
        let s: f64 = vals.iter().sum();
        if s != 0.0 {
            col_idx.push(0u32);
            values.push(s);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts_unchecked(m, 1, row_ptr, col_idx, values)
}

/// `colSums(A)`: per-column value sums as a `1 x n` row vector.
pub fn col_sums(a: &CsrMatrix) -> CsrMatrix {
    let n = a.ncols();
    let mut acc = vec![0.0f64; n];
    for (_, j, v) in a.iter_triples() {
        acc[j] += v;
    }
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for (j, &v) in acc.iter().enumerate() {
        if v != 0.0 {
            col_idx.push(j as u32);
            values.push(v);
        }
    }
    let nnz = col_idx.len();
    CsrMatrix::from_parts_unchecked(1, n, vec![0, nnz], col_idx, values)
}

/// `sum(A)`: the grand total of all values.
pub fn sum(a: &CsrMatrix) -> f64 {
    a.values().iter().sum()
}

/// `rowMaxs(A)` over stored values, with absent cells counting as zero
/// (`max(row) >= 0` for any non-full row).
pub fn row_maxs(a: &CsrMatrix) -> CsrMatrix {
    let m = a.nrows();
    let n = a.ncols();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..m {
        let (cols, vals) = a.row(i);
        let mut mx = if cols.len() < n {
            0.0f64
        } else {
            f64::NEG_INFINITY
        };
        for &v in vals {
            mx = mx.max(v);
        }
        if !vals.is_empty() && mx != 0.0 {
            col_idx.push(0u32);
            values.push(mx);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts_unchecked(m, 1, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::stats::NnzStats;
    use rand::SeedableRng;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 -3 0 ]
        CsrMatrix::from_triples(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, -3.0)],
        )
        .unwrap()
    }

    #[test]
    fn row_sums_values() {
        let r = row_sums(&sample());
        assert_eq!(r.shape(), (3, 1));
        assert_eq!(r.get(0, 0), 3.0);
        assert_eq!(r.get(1, 0), 0.0);
        assert_eq!(r.get(2, 0), 0.0); // 3 + (-3) cancels -> dropped
        assert_eq!(r.nnz(), 1);
    }

    #[test]
    fn col_sums_values() {
        let c = col_sums(&sample());
        assert_eq!(c.shape(), (1, 3));
        assert_eq!(c.get(0, 0), 4.0);
        assert_eq!(c.get(0, 1), -3.0);
        assert_eq!(c.get(0, 2), 2.0);
    }

    #[test]
    fn sum_is_total() {
        assert_eq!(sum(&sample()), 3.0);
        assert_eq!(sum(&CsrMatrix::zeros(4, 4)), 0.0);
    }

    #[test]
    fn sketch_definition_via_aggregations() {
        // h^r = rowSums(A != 0) and h^c = colSums(A != 0) — the paper's
        // defining identities, checked against the stats module.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = gen::rand_uniform(&mut rng, 25, 18, 0.2);
        let ind = a.to_indicator();
        let hr = row_sums(&ind);
        let hc = col_sums(&ind);
        let stats = NnzStats::compute(&a);
        for i in 0..25 {
            assert_eq!(hr.get(i, 0) as u32, stats.row_counts[i]);
        }
        for j in 0..18 {
            assert_eq!(hc.get(0, j) as u32, stats.col_counts[j]);
        }
    }

    #[test]
    fn row_maxs_with_implicit_zeros() {
        let m = CsrMatrix::from_triples(2, 3, vec![(0, 0, -5.0), (1, 1, 4.0)]).unwrap();
        let mx = row_maxs(&m);
        // Row 0: max(-5, 0, 0) = 0 -> dropped.
        assert_eq!(mx.get(0, 0), 0.0);
        assert_eq!(mx.get(1, 0), 4.0);
    }
}
