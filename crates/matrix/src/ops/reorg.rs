//! Reorganization operations: reshape, diag, rbind/cbind, `==0` / `!=0`.

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};

/// Row-wise reshape of an `m x n` matrix into a `k x l` matrix with
/// `m·n == k·l`: cell `(i, j)` moves to linear position `i·n + j`, which is
/// re-interpreted as `(p / l, p % l)`.
pub fn reshape(a: &CsrMatrix, k: usize, l: usize) -> Result<CsrMatrix> {
    let (m, n) = a.shape();
    if m.checked_mul(n) != k.checked_mul(l) || k * l == 0 && m * n != 0 {
        return Err(MatrixError::InvalidReshape {
            from: (m, n),
            to: (k, l),
        });
    }
    // Row-major traversal of A visits linear positions in increasing order,
    // so the output rows/columns come out sorted without extra sorting.
    let mut row_ptr = Vec::with_capacity(k + 1);
    let mut col_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    row_ptr.push(0usize);
    let mut cur_row = 0usize;
    for (i, j, v) in a.iter_triples() {
        let p = i * n + j;
        let (r, c) = (p / l, p % l);
        while cur_row < r {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        col_idx.push(c as u32);
        values.push(v);
    }
    while cur_row < k {
        row_ptr.push(col_idx.len());
        cur_row += 1;
    }
    Ok(CsrMatrix::from_parts_unchecked(
        k, l, row_ptr, col_idx, values,
    ))
}

/// `diag(v)`: places an `m x 1` column vector onto the diagonal of an
/// `m x m` matrix.
pub fn diag_v2m(v: &CsrMatrix) -> Result<CsrMatrix> {
    if v.ncols() != 1 {
        return Err(MatrixError::ShapeClass("diag_v2m expects a column vector"));
    }
    let m = v.nrows();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(v.nnz());
    let mut values = Vec::with_capacity(v.nnz());
    for i in 0..m {
        let (_, vals) = v.row(i);
        if let Some(&val) = vals.first() {
            col_idx.push(i as u32);
            values.push(val);
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, m, row_ptr, col_idx, values,
    ))
}

/// `diag(A)`: extracts the diagonal of a square matrix as an `m x 1` vector.
pub fn diag_extract(a: &CsrMatrix) -> Result<CsrMatrix> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::ShapeClass(
            "diag_extract expects a square matrix",
        ));
    }
    let m = a.nrows();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..m {
        let v = a.get(i, i);
        if v != 0.0 {
            col_idx.push(0u32);
            values.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        m, 1, row_ptr, col_idx, values,
    ))
}

/// Row-wise concatenation `rbind(A, B)` (stack vertically).
pub fn rbind(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.ncols() != b.ncols() {
        return Err(MatrixError::DimensionMismatch {
            op: "rbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.nrows() + b.nrows();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.extend_from_slice(a.row_ptr());
    let offset = a.nnz();
    row_ptr.extend(b.row_ptr()[1..].iter().map(|&p| p + offset));
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    col_idx.extend_from_slice(a.col_indices());
    col_idx.extend_from_slice(b.col_indices());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    values.extend_from_slice(a.values());
    values.extend_from_slice(b.values());
    Ok(CsrMatrix::from_parts_unchecked(
        m,
        a.ncols(),
        row_ptr,
        col_idx,
        values,
    ))
}

/// Column-wise concatenation `cbind(A, B)` (stack horizontally).
pub fn cbind(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.nrows() != b.nrows() {
        return Err(MatrixError::DimensionMismatch {
            op: "cbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let n = a.ncols() + b.ncols();
    let shift = a.ncols() as u32;
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        col_idx.extend_from_slice(ac);
        values.extend_from_slice(av);
        let (bc, bv) = b.row(i);
        col_idx.extend(bc.iter().map(|&c| c + shift));
        values.extend_from_slice(bv);
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        n,
        row_ptr,
        col_idx,
        values,
    ))
}

/// `A != 0`: the 0/1 indicator of the non-zero pattern.
pub fn neq_zero(a: &CsrMatrix) -> CsrMatrix {
    a.to_indicator()
}

/// `A == 0`: the 0/1 indicator of the *zero* pattern (the complement).
///
/// The output has `m·n - nnz(A)` non-zeros, i.e. it is typically dense;
/// use only at benchmark scale.
pub fn eq_zero(a: &CsrMatrix) -> CsrMatrix {
    let (m, n) = a.shape();
    let mut row_ptr = Vec::with_capacity(m + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::with_capacity(m * n - a.nnz());
    for i in 0..m {
        let (cols, _) = a.row(i);
        let mut p = 0usize;
        for j in 0..n as u32 {
            if p < cols.len() && cols[p] == j {
                p += 1;
            } else {
                col_idx.push(j);
            }
        }
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; col_idx.len()];
    CsrMatrix::from_parts_unchecked(m, n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn reshape_preserves_linear_positions() {
        // 2x6 -> 3x4: position (1, 2) = linear 8 -> (2, 0).
        let a = CsrMatrix::from_triples(2, 6, vec![(0, 0, 1.0), (1, 2, 2.0), (1, 5, 3.0)]).unwrap();
        let r = reshape(&a, 3, 4).unwrap();
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(2, 0), 2.0);
        assert_eq!(r.get(2, 3), 3.0);
        assert_eq!(r.nnz(), a.nnz());
    }

    #[test]
    fn reshape_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = gen::rand_uniform(&mut rng, 12, 10, 0.2);
        let r = reshape(&a, 20, 6).unwrap();
        let back = reshape(&r, 12, 10).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn reshape_bad_dims_rejected() {
        let a = CsrMatrix::zeros(2, 6);
        assert!(reshape(&a, 5, 2).is_err());
    }

    #[test]
    fn diag_roundtrip() {
        let v = CsrMatrix::from_triples(4, 1, vec![(0, 0, 1.5), (2, 0, -2.0)]).unwrap();
        let d = diag_v2m(&v).unwrap();
        assert_eq!(d.shape(), (4, 4));
        assert_eq!(d.get(0, 0), 1.5);
        assert_eq!(d.get(2, 2), -2.0);
        assert_eq!(d.nnz(), 2);
        let back = diag_extract(&d).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn diag_shape_checks() {
        assert!(diag_v2m(&CsrMatrix::zeros(3, 2)).is_err());
        assert!(diag_extract(&CsrMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn rbind_cbind() {
        let a = CsrMatrix::from_triples(1, 2, vec![(0, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triples(2, 2, vec![(1, 1, 2.0)]).unwrap();
        let r = rbind(&a, &b).unwrap();
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(2, 1), 2.0);

        let c = cbind(
            &a,
            &CsrMatrix::from_triples(1, 3, vec![(0, 2, 9.0)]).unwrap(),
        )
        .unwrap();
        assert_eq!(c.shape(), (1, 5));
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 4), 9.0);
    }

    #[test]
    fn bind_shape_checks() {
        assert!(rbind(&CsrMatrix::zeros(1, 2), &CsrMatrix::zeros(1, 3)).is_err());
        assert!(cbind(&CsrMatrix::zeros(1, 2), &CsrMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn eq_and_neq_zero_partition_cells() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = gen::rand_uniform(&mut rng, 9, 11, 0.3);
        let nz = neq_zero(&a);
        let z = eq_zero(&a);
        assert_eq!(nz.nnz() + z.nnz(), 9 * 11);
        // Patterns are disjoint.
        let inter = crate::ops::ew_mul(&nz, &z).unwrap();
        assert_eq!(inter.nnz(), 0);
    }

    #[test]
    fn eq_zero_of_empty_is_full() {
        let z = eq_zero(&CsrMatrix::zeros(3, 4));
        assert_eq!(z.nnz(), 12);
        assert!((z.sparsity() - 1.0).abs() < 1e-12);
    }
}
