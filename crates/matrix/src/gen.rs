//! Deterministic, seeded generators for every matrix family the SparsEst
//! benchmark needs.
//!
//! All generators take an explicit `&mut impl Rng` so experiments are
//! reproducible from a single seed. Values are drawn from `[0.1, 1.0)`:
//! strictly positive, which realizes assumption A1 (no cancellation).

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rand_ext::Zipf;

/// Draws a non-zero value in `[0.1, 1.0)`.
#[inline]
pub fn nz_value<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    0.1 + 0.9 * rng.gen::<f64>()
}

/// Uniformly random sparse matrix with the given expected sparsity.
///
/// For `sparsity < 0.1` the generator samples `round(s·m·n)` distinct cells
/// (exact nnz); otherwise it performs per-cell Bernoulli trials (expected
/// nnz), which is faster for dense-ish matrices.
pub fn rand_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    nrows: usize,
    ncols: usize,
    sparsity: f64,
) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let cells = nrows as u128 * ncols as u128;
    if cells == 0 {
        return CsrMatrix::zeros(nrows, ncols);
    }
    if sparsity < 0.1 {
        let target = ((sparsity * cells as f64).round() as u128).min(cells) as usize;
        let mut seen: HashSet<u64> = HashSet::with_capacity(target * 2);
        let mut coo = CooMatrix::with_capacity(nrows, ncols, target);
        while seen.len() < target {
            let i = rng.gen_range(0..nrows);
            let j = rng.gen_range(0..ncols);
            let key = (i as u64) * (ncols as u64) + j as u64;
            if seen.insert(key) {
                coo.push(i, j, nz_value(rng)).expect("in range");
            }
        }
        CsrMatrix::from_coo(coo)
    } else {
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..nrows {
            for j in 0..ncols {
                if rng.gen::<f64>() < sparsity {
                    col_idx.push(j as u32);
                    values.push(nz_value(rng));
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts_unchecked(nrows, ncols, row_ptr, col_idx, values)
    }
}

/// Fully dense random matrix.
pub fn rand_dense<R: Rng + ?Sized>(rng: &mut R, nrows: usize, ncols: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nrows * ncols);
    let mut values = Vec::with_capacity(nrows * ncols);
    for _ in 0..nrows {
        for j in 0..ncols {
            col_idx.push(j as u32);
            values.push(nz_value(rng));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, row_ptr, col_idx, values)
}

/// Samples `count` distinct column positions out of `0..ncols`.
fn sample_distinct_cols<R: Rng + ?Sized>(rng: &mut R, ncols: usize, count: usize) -> Vec<u32> {
    let count = count.min(ncols);
    if count * 3 >= ncols {
        // Dense-ish row: partial Fisher-Yates over all columns.
        let mut all: Vec<u32> = (0..ncols as u32).collect();
        all.partial_shuffle(rng, count);
        let mut cols = all[..count].to_vec();
        cols.sort_unstable();
        cols
    } else {
        let mut seen = HashSet::with_capacity(count * 2);
        while seen.len() < count {
            seen.insert(rng.gen_range(0..ncols) as u32);
        }
        let mut cols: Vec<u32> = seen.into_iter().collect();
        cols.sort_unstable();
        cols
    }
}

/// Random matrix with an exact, caller-specified number of non-zeros per row.
pub fn rand_with_row_counts<R: Rng + ?Sized>(
    rng: &mut R,
    ncols: usize,
    row_counts: &[u32],
) -> CsrMatrix {
    let nrows = row_counts.len();
    let total: usize = row_counts.iter().map(|&c| c as usize).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for &c in row_counts {
        let cols = sample_distinct_cols(rng, ncols, c as usize);
        for col in cols {
            col_idx.push(col);
            values.push(nz_value(rng));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, row_ptr, col_idx, values)
}

/// Random matrix with an exact, caller-specified number of non-zeros per
/// column (generated on the transpose, then transposed back).
pub fn rand_with_col_counts<R: Rng + ?Sized>(
    rng: &mut R,
    nrows: usize,
    col_counts: &[u32],
) -> CsrMatrix {
    rand_with_row_counts(rng, nrows, col_counts).transpose()
}

/// Splits `total` non-zeros over `n` buckets following a Zipf law with the
/// given exponent, capping each bucket at `cap`. Returns the bucket counts.
///
/// Used for power-law column/row distributions (e.g. token frequencies in
/// the B1.1/B2.1 NLP scenarios).
pub fn powerlaw_counts<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    total: usize,
    exponent: f64,
    cap: usize,
) -> Vec<u32> {
    let zipf = Zipf::new(n, exponent);
    let mut counts = vec![0u32; n];
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = total.saturating_mul(20).max(1024);
    while placed < total && attempts < max_attempts {
        attempts += 1;
        let k = zipf.sample(rng);
        if (counts[k] as usize) < cap {
            counts[k] += 1;
            placed += 1;
        }
    }
    // If rejection sampling stalls (tiny caps), spill round-robin.
    let mut k = 0usize;
    while placed < total {
        if (counts[k] as usize) < cap {
            counts[k] += 1;
            placed += 1;
        }
        k = (k + 1) % n;
    }
    counts
}

/// Random `n x n` permutation matrix (exactly one 1 per row and column).
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CsrMatrix {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    let row_ptr = (0..=n).collect();
    let values = vec![1.0; n];
    CsrMatrix::from_parts_unchecked(n, n, row_ptr, perm, values)
}

/// Selection matrix `P` of shape `k x m` with `P[i, rows[i]] = 1`:
/// `P · X` extracts the listed rows of `X` in order.
pub fn selection_matrix(rows: &[usize], m: usize) -> CsrMatrix {
    let k = rows.len();
    let row_ptr = (0..=k).collect();
    let col_idx: Vec<u32> = rows
        .iter()
        .map(|&r| {
            assert!(r < m, "selected row out of range");
            r as u32
        })
        .collect();
    let values = vec![1.0; k];
    CsrMatrix::from_parts_unchecked(k, m, row_ptr, col_idx, values)
}

/// Column-projection matrix of shape `n x w` selecting columns
/// `lo..lo+w`: `X · P` keeps that column range.
pub fn col_projection(n: usize, lo: usize, w: usize) -> CsrMatrix {
    assert!(lo + w <= n, "projection range out of bounds");
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(w);
    for r in 0..n {
        if r >= lo && r < lo + w {
            col_idx.push((r - lo) as u32);
        }
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; w];
    CsrMatrix::from_parts_unchecked(n, w, row_ptr, col_idx, values)
}

/// Scalar scaling matrix `diag(lambda)` of size `n` — fully diagonal.
pub fn scalar_diag(n: usize, lambda: f64) -> CsrMatrix {
    assert!(lambda != 0.0, "zero diagonal would not be fully diagonal");
    let row_ptr = (0..=n).collect();
    let col_idx = (0..n as u32).collect();
    let values = vec![lambda; n];
    CsrMatrix::from_parts_unchecked(n, n, row_ptr, col_idx, values)
}

/// The paper's B3.2 "scale & shift" matrix: `n x n` with a fully dense
/// diagonal and a fully dense last row (used to fold feature scaling and
/// intercept shifting into one product).
pub fn scale_shift_matrix<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 2 * n);
    for i in 0..n {
        coo.push(i, i, nz_value(rng)).expect("in range");
    }
    for j in 0..n {
        if j != n - 1 {
            coo.push(n - 1, j, nz_value(rng)).expect("in range");
        }
    }
    CsrMatrix::from_coo(coo)
}

/// Dense column vector of ones (`m x 1`).
pub fn ones_vector(m: usize) -> CsrMatrix {
    let row_ptr = (0..=m).collect();
    let col_idx = vec![0u32; m];
    let values = vec![1.0; m];
    CsrMatrix::from_parts_unchecked(m, 1, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rand_uniform_hits_target_sparsity_sparse_path() {
        let m = rand_uniform(&mut rng(1), 200, 150, 0.01);
        assert_eq!(m.nnz(), (0.01f64 * 200.0 * 150.0).round() as usize);
    }

    #[test]
    fn rand_uniform_dense_path_close_to_target() {
        let m = rand_uniform(&mut rng(2), 300, 300, 0.5);
        let s = m.sparsity();
        assert!((s - 0.5).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn rand_uniform_extremes() {
        assert_eq!(rand_uniform(&mut rng(3), 10, 10, 0.0).nnz(), 0);
        assert_eq!(rand_uniform(&mut rng(3), 10, 10, 1.0).nnz(), 100);
        assert_eq!(rand_dense(&mut rng(3), 7, 5).nnz(), 35);
    }

    #[test]
    fn row_counts_respected_exactly() {
        let counts = vec![0u32, 1, 5, 10, 10];
        let m = rand_with_row_counts(&mut rng(4), 10, &counts);
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(m.row_nnz(i), c as usize);
        }
    }

    #[test]
    fn col_counts_respected_exactly() {
        let counts = vec![3u32, 0, 7];
        let m = rand_with_col_counts(&mut rng(5), 8, &counts);
        let col = crate::stats::col_nnz_counts(&m);
        assert_eq!(col, counts);
        assert_eq!(m.shape(), (8, 3));
    }

    #[test]
    fn powerlaw_counts_sum_and_skew() {
        let counts = powerlaw_counts(&mut rng(6), 100, 5_000, 1.1, 1_000);
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        assert_eq!(total, 5_000);
        assert!(counts[0] > counts[50]);
    }

    #[test]
    fn powerlaw_counts_respects_cap() {
        let counts = powerlaw_counts(&mut rng(7), 10, 95, 2.0, 10);
        assert!(counts.iter().all(|&c| c <= 10));
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        assert_eq!(total, 95);
    }

    #[test]
    fn permutation_has_one_per_row_and_col() {
        let p = permutation(&mut rng(8), 50);
        assert_eq!(p.nnz(), 50);
        let stats = crate::stats::NnzStats::compute(&p);
        assert!(stats.row_counts.iter().all(|&c| c == 1));
        assert!(stats.col_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn permutation_product_preserves_sparsity() {
        let mut r = rng(9);
        let p = permutation(&mut r, 30);
        let x = rand_uniform(&mut r, 30, 10, 0.3);
        let y = crate::ops::matmul(&p, &x).unwrap();
        assert_eq!(y.nnz(), x.nnz());
    }

    #[test]
    fn selection_matrix_selects_rows() {
        let mut r = rng(10);
        let x = rand_uniform(&mut r, 20, 6, 0.4);
        let p = selection_matrix(&[3, 17, 5], 20);
        let y = crate::ops::matmul(&p, &x).unwrap();
        assert_eq!(y.shape(), (3, 6));
        assert_eq!(y.to_dense().row(0), x.to_dense().row(3));
        assert_eq!(y.to_dense().row(1), x.to_dense().row(17));
    }

    #[test]
    fn col_projection_selects_columns() {
        let mut r = rng(11);
        let x = rand_uniform(&mut r, 10, 20, 0.4);
        let p = col_projection(20, 5, 4);
        let y = crate::ops::matmul(&x, &p).unwrap();
        assert_eq!(y.shape(), (10, 4));
        for i in 0..10 {
            for j in 0..4 {
                assert_eq!(y.get(i, j), x.get(i, j + 5));
            }
        }
    }

    #[test]
    fn scalar_diag_is_fully_diagonal() {
        let d = scalar_diag(12, 2.5);
        assert!(d.is_fully_diagonal());
        assert_eq!(d.get(3, 3), 2.5);
    }

    #[test]
    fn scale_shift_structure() {
        let s = scale_shift_matrix(&mut rng(12), 10);
        assert_eq!(s.nnz(), 2 * 10 - 1);
        for i in 0..10 {
            assert!(s.get(i, i) != 0.0, "diagonal {i}");
            assert!(s.get(9, i) != 0.0, "last row {i}");
        }
    }

    #[test]
    fn ones_vector_shape() {
        let v = ones_vector(5);
        assert_eq!(v.shape(), (5, 1));
        assert_eq!(v.nnz(), 5);
    }
}
