//! Row-partitioned matrices — the substrate for distributed sketch
//! construction (the paper's Section 3.1 notes that the MNC sketch "can be
//! computed via distributed operations and subsequently collected and used
//! in the driver"; full distributed support is listed as future work).
//!
//! A [`RowPartitionedMatrix`] splits a logical matrix into contiguous row
//! blocks, mimicking the block-partitioned RDDs/DataSets of systems like
//! SystemML. Sketch construction over the partitions lives in
//! `mnc_core::distributed`.

use std::sync::Arc;

use mnc_kernels::row_chunks;

use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};
use crate::ops::rbind;

/// A logical matrix stored as contiguous row blocks.
#[derive(Debug, Clone)]
pub struct RowPartitionedMatrix {
    parts: Vec<Arc<CsrMatrix>>,
    /// Global row offset of each partition (length `parts.len() + 1`).
    offsets: Vec<usize>,
    ncols: usize,
}

impl RowPartitionedMatrix {
    /// Partitions a matrix into (at most) `nparts` contiguous row blocks.
    pub fn from_matrix(m: &CsrMatrix, nparts: usize) -> Self {
        let nparts = nparts.clamp(1, m.nrows().max(1));
        let mut parts = Vec::new();
        let mut offsets = vec![0usize];
        for (start, end) in row_chunks(m.nrows(), nparts) {
            let mut triples = Vec::new();
            for i in start..end {
                let (cols, vals) = m.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    triples.push((i - start, c as usize, v));
                }
            }
            let part = CsrMatrix::from_triples(end - start, m.ncols(), triples)
                .expect("triples from a valid matrix");
            parts.push(Arc::new(part));
            offsets.push(end);
        }
        if parts.is_empty() {
            // Zero-row matrix: a single empty partition keeps invariants.
            parts.push(Arc::new(CsrMatrix::zeros(0, m.ncols())));
            offsets.push(0);
        }
        RowPartitionedMatrix {
            parts,
            offsets,
            ncols: m.ncols(),
        }
    }

    /// Assembles a partitioned matrix from explicit row blocks.
    pub fn from_parts(parts: Vec<Arc<CsrMatrix>>) -> Result<Self> {
        if parts.is_empty() {
            return Err(MatrixError::ShapeClass("at least one partition required"));
        }
        let ncols = parts[0].ncols();
        let mut offsets = vec![0usize];
        for p in &parts {
            if p.ncols() != ncols {
                return Err(MatrixError::DimensionMismatch {
                    op: "from_parts",
                    lhs: (offsets.len(), ncols),
                    rhs: p.shape(),
                });
            }
            offsets.push(offsets.last().unwrap() + p.nrows());
        }
        Ok(RowPartitionedMatrix {
            parts,
            offsets,
            ncols,
        })
    }

    /// Total (logical) row count.
    pub fn nrows(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Column count (shared by all partitions).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total non-zeros across partitions.
    pub fn nnz(&self) -> usize {
        self.parts.iter().map(|p| p.nnz()).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The `i`-th partition.
    pub fn part(&self, i: usize) -> &Arc<CsrMatrix> {
        &self.parts[i]
    }

    /// Global row offset of partition `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Iterates `(global_row_offset, partition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Arc<CsrMatrix>)> {
        self.offsets.iter().copied().zip(self.parts.iter())
    }

    /// Materializes the logical matrix (for verification).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut acc: Option<CsrMatrix> = None;
        for p in &self.parts {
            acc = Some(match acc {
                None => (**p).clone(),
                Some(a) => rbind(&a, p).expect("partitions share column counts"),
            });
        }
        acc.unwrap_or_else(|| CsrMatrix::zeros(0, self.ncols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn partition_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = gen::rand_uniform(&mut rng, 37, 20, 0.15);
        for nparts in [1, 2, 3, 5, 37, 100] {
            let pm = RowPartitionedMatrix::from_matrix(&m, nparts);
            assert_eq!(pm.nrows(), 37);
            assert_eq!(pm.ncols(), 20);
            assert_eq!(pm.nnz(), m.nnz());
            assert!(pm.num_partitions() <= nparts.max(1));
            assert_eq!(pm.to_csr(), m, "nparts = {nparts}");
        }
    }

    #[test]
    fn offsets_are_cumulative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = gen::rand_uniform(&mut rng, 10, 5, 0.3);
        let pm = RowPartitionedMatrix::from_matrix(&m, 3);
        let mut expected = 0usize;
        for (off, part) in pm.iter() {
            assert_eq!(off, expected);
            expected += part.nrows();
        }
        assert_eq!(expected, 10);
    }

    #[test]
    fn from_parts_validates_columns() {
        let a = Arc::new(CsrMatrix::zeros(2, 3));
        let b = Arc::new(CsrMatrix::zeros(2, 4));
        assert!(RowPartitionedMatrix::from_parts(vec![a.clone(), b]).is_err());
        assert!(RowPartitionedMatrix::from_parts(vec![]).is_err());
        let ok = RowPartitionedMatrix::from_parts(vec![a.clone(), a]).unwrap();
        assert_eq!(ok.nrows(), 4);
    }

    #[test]
    fn empty_matrix_partitions() {
        let m = CsrMatrix::zeros(0, 7);
        let pm = RowPartitionedMatrix::from_matrix(&m, 4);
        assert_eq!(pm.nrows(), 0);
        assert_eq!(pm.ncols(), 7);
        assert_eq!(pm.to_csr().shape(), (0, 7));
    }
}
