//! Row-major dense matrix, used for small cross-checks of sparse kernels.

use std::ops::{Index, IndexMut};

use crate::error::{MatrixError, Result};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(MatrixError::MalformedBuffers("dense buffer length"));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Underlying row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of non-zero cells.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Sparsity (non-zero fraction).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Textbook dense matrix product (for verification only).
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != rhs.nrows {
            return Err(MatrixError::DimensionMismatch {
                op: "dense matmul",
                lhs: (self.nrows, self.ncols),
                rhs: (rhs.nrows, rhs.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, rhs.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.data[i * self.ncols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_rows() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m[(1, 2)] = 7.0;
        assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        assert_eq!(m.nnz(), 2);
        assert!((m.sparsity() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn dense_matmul() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_check() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }
}
