//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's datasets (SuiteSparse's Email-EuAll, AMiner exports, ...)
//! ship in MatrixMarket coordinate format; this module reads and writes the
//! `matrix coordinate real/integer/pattern general` subset so users can run
//! the estimators on their own data. Sketch construction can be
//! piggybacked on the read (Section 3.1: "the MNC construction can be
//! piggybacked on the read of matrices") via [`read_matrix_market_with`].

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{MatrixError, Result};

/// Reads a MatrixMarket coordinate file from any buffered reader.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix> {
    read_matrix_market_with(reader, |_, _, _| {})
}

/// Reads a MatrixMarket coordinate file, invoking `observe(row, col, value)`
/// for every entry — the hook on which sketch construction piggybacks.
pub fn read_matrix_market_with<R: BufRead>(
    reader: R,
    mut observe: impl FnMut(usize, usize, f64),
) -> Result<CsrMatrix> {
    let mut lines = reader.lines();
    // Header: "%%MatrixMarket matrix coordinate <field> <symmetry>".
    let header = lines
        .next()
        .ok_or(MatrixError::MalformedBuffers("empty MatrixMarket file"))?
        .map_err(|_| MatrixError::MalformedBuffers("unreadable header"))?;
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(MatrixError::MalformedBuffers(
            "only `matrix coordinate` MatrixMarket files are supported",
        ));
    }
    let pattern = header_lc.contains("pattern");
    let symmetric = header_lc.contains("symmetric");

    let mut coo: Option<CooMatrix> = None;
    let mut expected = 0usize;
    for line in lines {
        let line = line.map_err(|_| MatrixError::MalformedBuffers("unreadable line"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_ascii_whitespace();
        if coo.is_none() {
            // Size line: rows cols nnz.
            let rows: usize = parse(it.next())?;
            let cols: usize = parse(it.next())?;
            expected = parse(it.next())?;
            coo = Some(CooMatrix::with_capacity(rows, cols, expected));
            continue;
        }
        let coo_ref = coo.as_mut().expect("initialized above");
        let i: usize = parse::<usize>(it.next())?
            .checked_sub(1)
            .ok_or(MatrixError::MalformedBuffers("1-based row index is 0"))?;
        let j: usize = parse::<usize>(it.next())?
            .checked_sub(1)
            .ok_or(MatrixError::MalformedBuffers("1-based column index is 0"))?;
        let v: f64 = if pattern { 1.0 } else { parse(it.next())? };
        observe(i, j, v);
        coo_ref.push(i, j, v)?;
        if symmetric && i != j {
            coo_ref.push(j, i, v)?;
        }
    }
    let coo = coo.ok_or(MatrixError::MalformedBuffers("missing size line"))?;
    // Note: the declared entry count is advisory only — explicit zeros are
    // dropped on push and symmetric files expand, so `coo.len()` may differ
    // from `expected` for well-formed files.
    let _ = expected;
    Ok(CsrMatrix::from_coo(coo))
}

fn parse<T: std::str::FromStr>(tok: Option<&str>) -> Result<T> {
    tok.and_then(|t| t.parse().ok())
        .ok_or(MatrixError::MalformedBuffers("malformed numeric token"))
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix> {
    let file =
        std::fs::File::open(path).map_err(|_| MatrixError::MalformedBuffers("cannot open file"))?;
    read_matrix_market(std::io::BufReader::new(file))
}

/// Writes a matrix in MatrixMarket `coordinate real general` format.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let io_err = |_| MatrixError::MalformedBuffers("write failure");
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "% written by mnc-rs").map_err(io_err)?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz()).map_err(io_err)?;
    for (i, j, v) in m.iter_triples() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Writes a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file(m: &CsrMatrix, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|_| MatrixError::MalformedBuffers("cannot create file"))?;
    write_matrix_market(m, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_through_buffer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = gen::rand_uniform(&mut rng, 20, 30, 0.1);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reads_pattern_files() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % comment line\n\
                    3 4 2\n\
                    1 1\n\
                    3 4\n";
        let m = read_matrix_market(std::io::Cursor::new(text)).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 3), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn reads_symmetric_files() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 3 7.0\n";
        let m = read_matrix_market(std::io::Cursor::new(text)).unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0); // mirrored
        assert_eq!(m.get(2, 2), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_non_coordinate() {
        let text = "%%MatrixMarket matrix array real general\n1 1\n0.5\n";
        assert!(read_matrix_market(std::io::Cursor::new(text)).is_err());
        assert!(read_matrix_market(std::io::Cursor::new("")).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        assert!(read_matrix_market(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn observe_hook_sees_all_entries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = gen::rand_uniform(&mut rng, 10, 10, 0.2);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let mut count = 0usize;
        let back =
            read_matrix_market_with(std::io::Cursor::new(buf), |_, _, _| count += 1).unwrap();
        assert_eq!(count, m.nnz());
        assert_eq!(back, m);
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = gen::rand_uniform(&mut rng, 8, 8, 0.3);
        let path = std::env::temp_dir().join("mnc_io_test.mtx");
        write_matrix_market_file(&m, &path).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, m);
    }
}
