//! # mnc-matrix
//!
//! Sparse-matrix substrate for the MNC sparsity-estimation reproduction
//! (Sommer et al., *MNC: Structure-Exploiting Sparsity Estimation for Matrix
//! Expressions*, SIGMOD 2019).
//!
//! This crate provides everything the estimators and the SparsEst benchmark
//! need from a linear-algebra runtime:
//!
//! * matrix formats: triple-based [`CooMatrix`], compressed-sparse-row
//!   [`CsrMatrix`] (the workhorse), and a row-major [`DenseMatrix`] used for
//!   small cross-checks;
//! * exact kernels for every operation the paper's Section 4 covers:
//!   matrix product (SpGEMM), element-wise add/multiply, transpose, row-wise
//!   reshape, `diag`, `rbind`/`cbind`, and the `==0` / `!=0` comparisons;
//! * non-zero statistics (row/column count vectors, the raw material of the
//!   MNC sketch);
//! * deterministic, seeded random generators for every matrix family used by
//!   the SparsEst benchmark (uniform sparsity, per-row/column counts,
//!   power-law skew, permutation/selection/diagonal matrices, ...).
//!
//! All kernels follow the paper's simplifying assumptions:
//!
//! * **A1 — no cancellation**: generated values are strictly positive, so
//!   additions never produce incidental zeros. Kernels still drop exact
//!   zeros defensively.
//! * **A2 — no NaNs**: values are finite; debug assertions enforce this.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod io;
pub mod ops;
pub mod partition;
pub mod rand_ext;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};
pub use stats::NnzStats;
