//! Coordinate (triple) format — the ingestion format.
//!
//! `CooMatrix` is the builder format: cheap appends, no ordering invariant.
//! Every generator first produces a COO matrix and then compresses it into a
//! [`CsrMatrix`](crate::CsrMatrix).

use crate::error::{MatrixError, Result};

/// A sparse matrix in coordinate (row, col, value) format.
///
/// Invariants enforced at conversion time (not on push):
/// * all indices are in range,
/// * duplicate coordinates are summed on compression (consistent with the
///   usual COO semantics).
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "dimensions must fit in u32"
        );
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.values.reserve(cap);
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends an entry. Zero values are dropped (assumption A1 makes them
    /// meaningless), out-of-range indices are an error.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        debug_assert!(value.is_finite(), "assumption A2: no NaN/Inf values");
        if value != 0.0 {
            self.rows.push(row as u32);
            self.cols.push(col as u32);
            self.values.push(value);
        }
        Ok(())
    }

    /// Iterates over stored `(row, col, value)` triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Consumes the builder and returns the raw `(rows, cols, values)`
    /// buffers, e.g. for direct CSR compression.
    pub(crate) fn into_parts(self) -> (usize, usize, Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter() {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 1.0).unwrap();
        m.push(2, 3, 2.5).unwrap();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 1, 1.0), (2, 3, 2.5)]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn zero_values_dropped() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 0.0).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            m.push(0, 2, 1.0),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn with_capacity_reserves() {
        let m = CooMatrix::with_capacity(2, 2, 16);
        assert_eq!(m.len(), 0);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
    }
}
