//! Compressed sparse row (CSR) format — the workhorse format.
//!
//! The paper's sketches are built in "a single scan over the non-zeros",
//! which CSR provides; the row-pointer array even gives the row-count vector
//! `h^r` for free (Section 3.1 of the paper).

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// A sparse matrix in CSR format.
///
/// Invariants:
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * column indices within each row are strictly increasing;
/// * stored values are finite and non-zero (assumptions A1/A2).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        assert!(
            ncols <= u32::MAX as usize,
            "column dimension must fit in u32"
        );
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n).collect();
        let col_idx = (0..n as u32).collect();
        let values = vec![1.0; n];
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(MatrixError::MalformedBuffers("row_ptr length"));
        }
        if row_ptr[0] != 0 || row_ptr[nrows] != col_idx.len() || col_idx.len() != values.len() {
            return Err(MatrixError::MalformedBuffers("buffer lengths"));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::MalformedBuffers("row_ptr not monotone"));
            }
        }
        for r in 0..nrows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(MatrixError::MalformedBuffers("columns not strictly sorted"));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= ncols {
                    return Err(MatrixError::MalformedBuffers("column index out of range"));
                }
            }
        }
        if values.iter().any(|v| !v.is_finite() || *v == 0.0) {
            return Err(MatrixError::MalformedBuffers("zero or non-finite value"));
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// Callers must uphold the type invariants; kernels in this crate use it
    /// after producing sorted, de-duplicated output.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Compresses a COO matrix into CSR form.
    ///
    /// Duplicate coordinates are summed; entries that sum to exactly zero
    /// are dropped.
    pub fn from_coo(coo: CooMatrix) -> Self {
        let (nrows, ncols, rows, cols, vals) = coo.into_parts();
        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for &r in &rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order = vec![0usize; rows.len()];
        {
            let mut next = counts.clone();
            for (k, &r) in rows.iter().enumerate() {
                let slot = next[r as usize];
                order[slot] = k;
                next[r as usize] += 1;
            }
        }
        // Per row: sort by column, merge duplicates.
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut col_idx: Vec<u32> = Vec::with_capacity(rows.len());
        let mut values: Vec<f64> = Vec::with_capacity(rows.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                scratch.push((cols[k], vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a matrix from an iterator of `(row, col, value)` triples.
    pub fn from_triples<I>(nrows: usize, ncols: usize, triples: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut coo = CooMatrix::new(nrows, ncols);
        for (r, c, v) in triples {
            coo.push(r, c, v)?;
        }
        Ok(Self::from_coo(coo))
    }

    /// Builds a CSR matrix from a dense row-major matrix, dropping zeros.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let (m, n) = (d.nrows(), d.ncols());
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..m {
            let row = d.row(i);
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: m,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored non-zeros, `nnz(A)`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Measured heap bytes retained by the matrix buffers (capacities, not
    /// lengths — this is what the allocator actually holds).
    pub fn heap_bytes(&self) -> u64 {
        (self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.col_idx.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f64>()) as u64
    }

    /// Sparsity `s_A = nnz(A) / (m·n)`; 0 for degenerate empty shapes.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (length `nnz`).
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array (length `nnz`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The sparse row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in row `i` (one entry of `h^r`).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` via binary search in row `i`; zero if absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter_triples(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Materializes the matrix densely (use only for small matrices/tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter_triples() {
            d[(i, j)] = v;
        }
        d
    }

    /// Transposes the matrix (counting sort over columns, `O(nnz + m + n)`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr_t = counts.clone();
        let mut col_idx_t = vec![0u32; self.nnz()];
        let mut values_t = vec![0.0f64; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                col_idx_t[slot] = i as u32;
                values_t[slot] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: row_ptr_t,
            col_idx: col_idx_t,
            values: values_t,
        }
    }

    /// Replaces every stored value with `1.0` (the `A != 0` indicator under
    /// assumption A1: the pattern is unchanged).
    pub fn to_indicator(&self) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = 1.0;
        }
        out
    }

    /// True if the matrix is square with a fully dense diagonal and no
    /// off-diagonal non-zeros (the paper's "fully diagonal" flag, Eq. 12).
    pub fn is_fully_diagonal(&self) -> bool {
        if self.nrows != self.ncols || self.nnz() != self.nrows {
            return false;
        }
        (0..self.nrows).all(|i| {
            let (cols, _) = self.row(i);
            cols.len() == 1 && cols[0] as usize == i
        })
    }

    /// Checks full structural equality of the non-zero *pattern* (ignores
    /// values). Useful for estimator exactness tests.
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.shape() == other.shape()
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triples(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 4);
        assert!((m.sparsity() - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn from_coo_merges_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap(); // cancels to zero -> dropped
        let m = CsrMatrix::from_coo(coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn from_coo_sorts_columns() {
        let m = CsrMatrix::from_triples(1, 5, vec![(0, 4, 4.0), (0, 1, 1.0), (0, 3, 3.0)]).unwrap();
        assert_eq!(m.col_indices(), &[1, 3, 4]);
        assert_eq!(m.values(), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::from_triples(2, 4, vec![(0, 3, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 2));
        assert_eq!(t.get(3, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn identity_is_fully_diagonal() {
        assert!(CsrMatrix::identity(5).is_fully_diagonal());
        assert!(!sample().is_fully_diagonal());
        // Diagonal with a hole is not fully diagonal.
        let holey = CsrMatrix::from_triples(3, 3, vec![(0, 0, 1.0), (2, 2, 1.0)]).unwrap();
        assert!(!holey.is_fully_diagonal());
    }

    #[test]
    fn try_from_parts_validates() {
        // Unsorted columns rejected.
        assert!(CsrMatrix::try_from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]).is_err());
        // Out-of-range column rejected.
        assert!(CsrMatrix::try_from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Zero value rejected.
        assert!(CsrMatrix::try_from_parts(1, 2, vec![0, 1], vec![0], vec![0.0]).is_err());
        // Valid input accepted.
        let ok = CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn indicator_preserves_pattern() {
        let m = sample();
        let ind = m.to_indicator();
        assert!(ind.same_pattern(&m));
        assert!(ind.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn zeros_and_identity() {
        let z = CsrMatrix::zeros(3, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (3, 7));
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(2, 1), 0.0);
    }

    #[test]
    fn iter_triples_row_major() {
        let m = sample();
        let t: Vec<_> = m.iter_triples().collect();
        assert_eq!(t, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]);
    }
}
