//! Small distribution samplers used by generators and estimators.
//!
//! Implemented in-repo (rather than pulling `rand_distr`) because only two
//! distributions are needed: the exponential distribution (layered-graph
//! r-vectors, Cohen's estimator) and a Zipf/power-law distribution (skewed
//! non-zero placement in the SparsEst generators).

use rand::Rng;

/// Samples from the exponential distribution with rate `lambda` via
/// inversion: `-ln(1-U)/lambda`.
#[inline]
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = rng.gen::<f64>();
    // `1.0 - u` is in (0, 1], so the logarithm is finite.
    -(1.0 - u).ln() / lambda
}

/// A Zipf distribution over `{0, 1, ..., n-1}` with weight
/// `w(k) ∝ 1/(k+1)^exponent`, sampled by binary search over the CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `O(n)` space and time.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point round-off on the last bucket.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is empty (never: `new` asserts `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (0 is the most likely value).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability weight of rank `k`.
    pub fn weight(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 1.0) >= 0.0);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let z = Zipf::new(100, 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = Zipf::new(64, 1.0);
        let sum: f64 = (0..64).map(|k| z.weight(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 64);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_domain_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let z = Zipf::new(5, 2.0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
