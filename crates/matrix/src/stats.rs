//! Non-zero statistics: the raw material of count-based synopses.

use crate::csr::CsrMatrix;

/// Row and column non-zero count vectors of a matrix, as used throughout the
/// paper (`h^r = rowSums(A != 0)`, `h^c = colSums(A != 0)`).
///
/// Counts are stored as `u32` (4 bytes per dimension entry), matching the
/// paper's size accounting for the MNC sketch (Section 6.2: `2 · 4 · d` B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnzStats {
    /// Non-zeros per row (`h^r`), length `nrows`.
    pub row_counts: Vec<u32>,
    /// Non-zeros per column (`h^c`), length `ncols`.
    pub col_counts: Vec<u32>,
}

impl NnzStats {
    /// Computes both count vectors in a single scan over the non-zeros.
    pub fn compute(m: &CsrMatrix) -> Self {
        let mut row_counts = vec![0u32; m.nrows()];
        let mut col_counts = vec![0u32; m.ncols()];
        for (i, rc) in row_counts.iter_mut().enumerate() {
            let (cols, _) = m.row(i);
            *rc = cols.len() as u32;
            for &c in cols {
                col_counts[c as usize] += 1;
            }
        }
        NnzStats {
            row_counts,
            col_counts,
        }
    }

    /// Total non-zeros (must agree between both vectors).
    pub fn nnz(&self) -> u64 {
        self.row_counts.iter().map(|&c| c as u64).sum()
    }
}

/// Non-zeros per row as `u32` (one pass over `row_ptr`).
pub fn row_nnz_counts(m: &CsrMatrix) -> Vec<u32> {
    (0..m.nrows()).map(|i| m.row_nnz(i) as u32).collect()
}

/// Non-zeros per column as `u32` (one pass over the non-zeros).
pub fn col_nnz_counts(m: &CsrMatrix) -> Vec<u32> {
    let mut counts = vec![0u32; m.ncols()];
    for &c in m.col_indices() {
        counts[c as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_pattern() {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let m = CsrMatrix::from_triples(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap();
        let s = NnzStats::compute(&m);
        assert_eq!(s.row_counts, vec![2, 0, 2]);
        assert_eq!(s.col_counts, vec![2, 1, 1]);
        assert_eq!(s.nnz(), 4);
        assert_eq!(row_nnz_counts(&m), s.row_counts);
        assert_eq!(col_nnz_counts(&m), s.col_counts);
    }

    #[test]
    fn counts_of_empty_matrix() {
        let m = CsrMatrix::zeros(2, 5);
        let s = NnzStats::compute(&m);
        assert_eq!(s.row_counts, vec![0, 0]);
        assert_eq!(s.col_counts, vec![0; 5]);
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn row_and_col_sums_agree() {
        let m = CsrMatrix::identity(7);
        let s = NnzStats::compute(&m);
        let rsum: u64 = s.row_counts.iter().map(|&c| c as u64).sum();
        let csum: u64 = s.col_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(rsum, csum);
        assert_eq!(rsum, m.nnz() as u64);
    }
}
