//! Error type shared by all matrix kernels.

use std::fmt;

/// Errors produced by matrix constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A reshape was requested whose target cell count differs from the
    /// source cell count.
    InvalidReshape {
        from: (usize, usize),
        to: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        index: (usize, usize),
        shape: (usize, usize),
    },
    /// Raw CSR/COO buffers were inconsistent (lengths, ordering, ranges).
    MalformedBuffers(&'static str),
    /// The operation is only defined for a specific shape class
    /// (e.g. `diag` extraction needs a square matrix or a vector).
    ShapeClass(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::InvalidReshape { from, to } => write!(
                f,
                "invalid reshape: {}x{} ({} cells) -> {}x{} ({} cells)",
                from.0,
                from.1,
                from.0 * from.1,
                to.0,
                to.1,
                to.0 * to.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::MalformedBuffers(msg) => write!(f, "malformed buffers: {msg}"),
            MatrixError::ShapeClass(msg) => write!(f, "unsupported shape: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in matmul: 2x3 vs 4x5");
    }

    #[test]
    fn display_invalid_reshape() {
        let e = MatrixError::InvalidReshape {
            from: (2, 3),
            to: (4, 2),
        };
        assert_eq!(
            e.to_string(),
            "invalid reshape: 2x3 (6 cells) -> 4x2 (8 cells)"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds {
            index: (9, 9),
            shape: (3, 3),
        };
        assert_eq!(e.to_string(), "index (9, 9) out of bounds for 3x3 matrix");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MatrixError>();
    }
}
