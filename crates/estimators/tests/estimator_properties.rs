//! Property-based tests across all estimators: range validity, bias
//! directions, exactness, and degenerate-parameter equivalences.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;

use mnc_estimators::{
    eac, BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, DynamicDensityMapEstimator,
    LayeredGraphEstimator, MetaAcEstimator, MetaWcEstimator, MncEstimator, OpKind,
    SparsityEstimator, UnbiasedSamplingEstimator,
};
use mnc_matrix::{gen, ops, CsrMatrix};

fn make(rows: usize, cols: usize, s: f64, seed: u64) -> Arc<CsrMatrix> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Arc::new(gen::rand_uniform(&mut rng, rows, cols, s))
}

fn params() -> impl Strategy<Value = (usize, usize, usize, f64, f64, u64)> {
    (
        2usize..25,
        2usize..25,
        2usize..25,
        0.0f64..0.5,
        0.0f64..0.5,
        any::<u64>(),
    )
}

fn estimate_product(est: &dyn SparsityEstimator, a: &Arc<CsrMatrix>, b: &Arc<CsrMatrix>) -> f64 {
    let sa = est.build(a).expect("build a");
    let sb = est.build(b).expect("build b");
    est.estimate(&OpKind::MatMul, &[&sa, &sb])
        .expect("estimate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every estimator returns a valid sparsity for random products.
    #[test]
    fn all_estimators_in_unit_interval((m, n, l, s1, s2, seed) in params()) {
        let a = make(m, n, s1, seed);
        let b = make(n, l, s2, seed ^ 1);
        let estimators: Vec<Box<dyn SparsityEstimator>> = vec![
            Box::new(MetaWcEstimator),
            Box::new(MetaAcEstimator),
            Box::new(BiasedSamplingEstimator::default()),
            Box::new(UnbiasedSamplingEstimator::default()),
            Box::new(MncEstimator::new()),
            Box::new(MncEstimator::basic()),
            Box::new(DensityMapEstimator::with_block(8)),
            Box::new(DynamicDensityMapEstimator::default()),
            Box::new(BitsetEstimator::default()),
            Box::new(LayeredGraphEstimator::with_rounds(8)),
        ];
        for est in &estimators {
            let s = estimate_product(est.as_ref(), &a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{}: {}", est.name(), s);
        }
    }

    /// Bias directions hold: MetaWC over-estimates, biased sampling
    /// under-estimates, the bitset is exact.
    #[test]
    fn bias_directions((m, n, l, s1, s2, seed) in params()) {
        let a = make(m, n, s1, seed);
        let b = make(n, l, s2, seed ^ 2);
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        prop_assert!(estimate_product(&MetaWcEstimator, &a, &b) >= truth - 1e-12);
        let biased = BiasedSamplingEstimator { fraction: 0.3, seed };
        prop_assert!(estimate_product(&biased, &a, &b) <= truth + 1e-12);
        prop_assert!(
            (estimate_product(&BitsetEstimator::default(), &a, &b) - truth).abs() < 1e-12
        );
    }

    /// The MNC estimate is always within the Theorem 3.2 bounds.
    #[test]
    fn mnc_within_theorem_bounds((m, n, l, s1, s2, seed) in params()) {
        use mnc_core::MncSketch;
        let a = make(m, n, s1, seed);
        let b = make(n, l, s2, seed ^ 3);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let est = estimate_product(&MncEstimator::new(), &a, &b);
        let cells = (m * l) as f64;
        let lower = (ha.meta.half_full_rows * hb.meta.half_full_cols) as f64 / cells;
        let upper = (ha.meta.nonempty_rows * hb.meta.nonempty_cols) as f64 / cells;
        prop_assert!(est >= lower - 1e-12 && est <= upper + 1e-12);
    }

    /// Density map degenerations: b = 1 is exact, a covering block equals
    /// MetaAC.
    #[test]
    fn dmap_degenerations((m, n, l, s1, s2, seed) in params()) {
        let a = make(m, n, s1, seed);
        let b = make(n, l, s2, seed ^ 4);
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let fine = estimate_product(&DensityMapEstimator::with_block(1), &a, &b);
        prop_assert!((fine - truth).abs() < 1e-9, "b=1: {} vs {}", fine, truth);
        let block = m.max(n).max(l);
        let coarse = estimate_product(&DensityMapEstimator::with_block(block), &a, &b);
        let meta = eac(a.sparsity(), b.sparsity(), n as f64);
        prop_assert!((coarse - meta).abs() < 1e-9, "b=d: {} vs {}", coarse, meta);
    }

    /// Theorem 3.1 structural exactness holds through the trait layer.
    #[test]
    fn mnc_exact_for_permutation_products(
        (m, _n, l, s1, _s2, seed) in params(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 5);
        let p = Arc::new(gen::permutation(&mut rng, m));
        let x = make(m, l, s1, seed ^ 6);
        let est = estimate_product(&MncEstimator::new(), &p, &x);
        prop_assert!((est - x.sparsity()).abs() < 1e-12);
    }

    /// Estimates and propagated synopses agree on output sparsity for the
    /// chain-capable estimators.
    #[test]
    fn estimate_matches_propagated_sparsity((m, n, l, s1, s2, seed) in params()) {
        let a = make(m, n, s1, seed);
        let b = make(n, l, s2, seed ^ 7);
        // Estimators whose propagation materializes the estimate exactly.
        let exact_prop: Vec<Box<dyn SparsityEstimator>> = vec![
            Box::new(MetaAcEstimator),
            Box::new(MetaWcEstimator),
            Box::new(BitsetEstimator::default()),
            Box::new(DensityMapEstimator::with_block(8)),
        ];
        for est in &exact_prop {
            let sa = est.build(&a).unwrap();
            let sb = est.build(&b).unwrap();
            let direct = est.estimate(&OpKind::MatMul, &[&sa, &sb]).unwrap();
            let prop = est.propagate(&OpKind::MatMul, &[&sa, &sb]).unwrap();
            prop_assert!(
                (direct - prop.sparsity()).abs() < 1e-9,
                "{}: {} vs {}",
                est.name(),
                direct,
                prop.sparsity()
            );
        }
    }

    /// Diagonal extraction: the bitset is exact; the sampling estimator
    /// (with the base matrix) is exact; MetaAC matches the uniform
    /// expectation.
    #[test]
    fn diag_extraction_estimates((m, _n, _l, s1, _s2, seed) in params()) {
        let a = make(m, m, s1, seed ^ 9);
        let truth = ops::diag_extract(&a).unwrap().sparsity();
        let bitset = BitsetEstimator::default();
        let sa = bitset.build(&a).unwrap();
        let est = bitset.estimate(&OpKind::DiagM2V, &[&sa]).unwrap();
        prop_assert!((est - truth).abs() < 1e-12);

        let smpl = BiasedSamplingEstimator::default();
        let ss = smpl.build(&a).unwrap();
        let est_s = smpl.estimate(&OpKind::DiagM2V, &[&ss]).unwrap();
        prop_assert!((est_s - truth).abs() < 1e-12);

        let mnc = MncEstimator::new();
        let sm = mnc.build(&a).unwrap();
        let est_m = mnc.estimate(&OpKind::DiagM2V, &[&sm]).unwrap();
        prop_assert!((0.0..=1.0).contains(&est_m));
    }

    /// Element-wise estimates respect the certain bounds
    /// `s(A⊙B) <= min(sA, sB)` and `max(sA, sB) <= s(A+B) <= sA + sB` for
    /// the exact estimators and MNC.
    #[test]
    fn elementwise_bound_consistency((m, n, _l, s1, s2, seed) in params()) {
        let a = make(m, n, s1, seed);
        let b = make(m, n, s2, seed ^ 8);
        let mnc = MncEstimator::new();
        let sa = mnc.build(&a).unwrap();
        let sb = mnc.build(&b).unwrap();
        let add = mnc.estimate(&OpKind::EwAdd, &[&sa, &sb]).unwrap();
        prop_assert!(add <= a.sparsity() + b.sparsity() + 1e-12);
    }
}
