//! Sampling-based estimators (Section 2.3 and Appendix A).
//!
//! * [`BiasedSamplingEstimator`] — `E_smpl` (Eq. 5): views the product as a
//!   sum of outer products and returns the sparsity of the *largest sampled*
//!   outer product. A strict lower bound that does not converge even for
//!   `|S| = n`.
//! * [`UnbiasedSamplingEstimator`] — the Appendix A extension (Eq. 16):
//!   treats the unsampled outer products as drawn from the empirical
//!   distribution of the sampled ones, yielding an unbiased estimate.
//!
//! Neither estimator materializes a synopsis: leaves retain a cheap handle
//! to the base matrix, and all work happens at estimation time — matching
//! the paper's accounting (no construction cost, `O(|S|(m + l))`
//! estimation). Only the unbiased variant extends to chains, by replacing
//! unavailable intermediate column counts with `m_j · s_j` (Appendix A).

use std::sync::Arc;

use mnc_core::SplitMix64;
use mnc_matrix::CsrMatrix;

use crate::{EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// Synopsis for the sampling estimators: the retained base matrix for
/// leaves, or bare metadata for propagated intermediates.
#[derive(Debug, Clone)]
pub struct SampleSynopsis {
    /// The base matrix (leaves only; `None` after propagation).
    pub matrix: Option<Arc<CsrMatrix>>,
    /// Rows of the described matrix.
    pub nrows: usize,
    /// Columns of the described matrix.
    pub ncols: usize,
    /// (Estimated) non-zero count.
    pub nnz: f64,
}

impl SampleSynopsis {
    fn of(m: &Arc<CsrMatrix>) -> Self {
        SampleSynopsis {
            matrix: Some(Arc::clone(m)),
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz() as f64,
        }
    }

    /// Sparsity implied by the synopsis.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            (self.nnz / cells).clamp(0.0, 1.0)
        }
    }

    /// Owned synopsis bytes — the matrix handle is shared, so the sample
    /// synopsis itself is constant-size (the paper's "no construction").
    pub fn size_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
    }

    /// Measured heap bytes *retained* by the synopsis: the full base-matrix
    /// payload when the leaf handle is held (shared `Arc` payloads are
    /// attributed to every holder), 0 for propagated intermediates.
    pub fn heap_bytes(&self) -> u64 {
        self.matrix.as_ref().map_or(0, |m| {
            std::mem::size_of::<CsrMatrix>() as u64 + m.heap_bytes()
        })
    }

    /// Non-zeros in column `k`: exact (binary search per row) when the
    /// matrix is available, `nnz / ncols` (uniform assumption, Appendix A)
    /// otherwise.
    fn col_nnz(&self, k: usize) -> f64 {
        match &self.matrix {
            Some(m) => {
                let mut count = 0usize;
                for i in 0..m.nrows() {
                    let (cols, _) = m.row(i);
                    if cols.binary_search(&(k as u32)).is_ok() {
                        count += 1;
                    }
                }
                count as f64
            }
            None => {
                if self.ncols == 0 {
                    0.0
                } else {
                    self.nnz / self.ncols as f64
                }
            }
        }
    }

    /// Non-zeros in row `k`: exact from CSR when available.
    fn row_nnz(&self, k: usize) -> f64 {
        match &self.matrix {
            Some(m) => m.row_nnz(k) as f64,
            None => {
                if self.nrows == 0 {
                    0.0
                } else {
                    self.nnz / self.nrows as f64
                }
            }
        }
    }
}

/// Draws `count` distinct indices from `0..n`.
fn sample_indices(rng: &mut SplitMix64, n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n);
    if count * 3 >= n {
        // Partial Fisher-Yates for dense samples.
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + (rng.next_u64() as usize) % (n - i);
            all.swap(i, j);
        }
        all.truncate(count);
        all
    } else {
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        while seen.len() < count {
            seen.insert((rng.next_u64() as usize) % n);
        }
        seen.into_iter().collect()
    }
}

/// Shared configuration for both variants.
#[derive(Debug, Clone, Copy)]
struct SampleConfig {
    fraction: f64,
    seed: u64,
}

/// Default sample fraction used by the paper (`f = 0.05`).
pub const DEFAULT_FRACTION: f64 = 0.05;

fn sample_size(fraction: f64, n: usize) -> usize {
    ((fraction * n as f64).round() as usize).clamp(1, n.max(1))
}

/// Estimation shared by both variants for element-wise operations: sample
/// rows and compute exact per-row result counts from the base matrices.
fn ew_estimate(
    cfg: &SampleConfig,
    op: &OpKind,
    a: &SampleSynopsis,
    b: &SampleSynopsis,
) -> Result<f64> {
    let (ma, mb) = match (&a.matrix, &b.matrix) {
        (Some(x), Some(y)) => (x, y),
        // Without base matrices fall back to the average-case formula.
        _ => {
            let (sa, sb) = (a.sparsity(), b.sparsity());
            return Ok(match op {
                OpKind::EwAdd | OpKind::EwMax => crate::prob_or(sa, sb),
                _ => sa * sb,
            });
        }
    };
    let m = a.nrows;
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5EED_E300);
    let rows = sample_indices(&mut rng, m, sample_size(cfg.fraction, m));
    let mut total = 0usize;
    for &i in &rows {
        let (ac, _) = ma.row(i);
        let (bc, _) = mb.row(i);
        total += match op {
            OpKind::EwAdd | OpKind::EwMax => {
                // |union| = |A row| + |B row| - |intersection|.
                ac.len() + bc.len() - sorted_intersection(ac, bc)
            }
            OpKind::EwMul | OpKind::EwMin => sorted_intersection(ac, bc),
            _ => unreachable!("ew_estimate only handles element-wise ops"),
        };
    }
    let est_rows = rows.len().max(1) as f64;
    Ok((total as f64 / est_rows / a.ncols as f64).clamp(0.0, 1.0))
}

fn sorted_intersection(a: &[u32], b: &[u32]) -> usize {
    let (mut p, mut q, mut count) = (0usize, 0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].cmp(&b[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                p += 1;
                q += 1;
            }
        }
    }
    count
}

/// Metadata-style estimation for reorganizations (exact from counts), shared
/// by both variants.
fn reorg_estimate(op: &OpKind, inputs: &[&SampleSynopsis]) -> Result<f64> {
    let a = inputs[0];
    Ok(match op {
        OpKind::Transpose | OpKind::Reshape { .. } | OpKind::Neq0 => a.sparsity(),
        OpKind::Eq0 => 1.0 - a.sparsity(),
        OpKind::DiagV2M => {
            let m = a.nrows as f64;
            if m == 0.0 {
                0.0
            } else {
                a.nnz / (m * m)
            }
        }
        OpKind::DiagM2V => {
            // Exact diagonal count when the base matrix is available,
            // uniform expectation otherwise.
            match &a.matrix {
                Some(m) => {
                    let hits = (0..m.nrows()).filter(|&i| m.get(i, i) != 0.0).count();
                    hits as f64 / m.nrows().max(1) as f64
                }
                None => {
                    let (m, n) = (a.nrows as f64, a.ncols as f64);
                    if m == 0.0 || n == 0.0 {
                        0.0
                    } else {
                        a.nnz / (n * m)
                    }
                }
            }
        }
        OpKind::Rbind => {
            let b = inputs[1];
            (a.nnz + b.nnz) / ((a.nrows + b.nrows) as f64 * a.ncols as f64)
        }
        OpKind::Cbind => {
            let b = inputs[1];
            (a.nnz + b.nnz) / (a.nrows as f64 * (a.ncols + b.ncols) as f64)
        }
        _ => unreachable!("reorg_estimate only handles reorganizations"),
    })
}

fn propagate_common(
    name: &'static str,
    est: f64,
    op: &OpKind,
    inputs: &[&Synopsis],
) -> Result<Synopsis> {
    let shapes: Vec<(usize, usize)> = inputs.iter().map(|s| s.shape()).collect();
    let (rows, cols) = op.output_shape(&shapes)?;
    let _ = name;
    Ok(Synopsis::Sample(SampleSynopsis {
        matrix: None,
        nrows: rows,
        ncols: cols,
        nnz: est * rows as f64 * cols as f64,
    }))
}

/// `E_smpl`, the biased sampling estimator of Eq. 5 (a strict lower bound).
#[derive(Debug, Clone, Copy)]
pub struct BiasedSamplingEstimator {
    /// Fraction of the common dimension to sample (default 0.05).
    pub fraction: f64,
    /// RNG seed for the sample choice.
    pub seed: u64,
}

impl Default for BiasedSamplingEstimator {
    fn default() -> Self {
        BiasedSamplingEstimator {
            fraction: DEFAULT_FRACTION,
            seed: 0xB1A5,
        }
    }
}

/// The unbiased sampling estimator of Appendix A, Eq. 16.
#[derive(Debug, Clone, Copy)]
pub struct UnbiasedSamplingEstimator {
    /// Fraction of the common dimension to sample (default 0.05).
    pub fraction: f64,
    /// RNG seed for the sample choice.
    pub seed: u64,
}

impl Default for UnbiasedSamplingEstimator {
    fn default() -> Self {
        UnbiasedSamplingEstimator {
            fraction: DEFAULT_FRACTION,
            seed: 0x0B1A5,
        }
    }
}

fn unwrap<'a>(
    name: &'static str,
    inputs: &[&'a Synopsis],
    idx: usize,
) -> Result<&'a SampleSynopsis> {
    crate::expect_synopsis!(name, Synopsis::Sample, inputs, idx)
}

impl SparsityEstimator for BiasedSamplingEstimator {
    fn cache_key(&self) -> String {
        format!("{}:f={},seed={}", self.name(), self.fraction, self.seed)
    }

    fn name(&self) -> &'static str {
        "Sample"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Sample(SampleSynopsis::of(m)))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        let cfg = SampleConfig {
            fraction: self.fraction,
            seed: self.seed,
        };
        match op {
            OpKind::MatMul => {
                let a = unwrap(self.name(), inputs, 0)?;
                let b = unwrap(self.name(), inputs, 1)?;
                if a.matrix.is_none() || b.matrix.is_none() {
                    // Eq. 5 requires the actual matrices; chains are out of
                    // scope for the biased estimator (Table 1, `®` column).
                    return Err(EstimatorError::unsupported(self.name(), op));
                }
                let n = a.ncols;
                let mut rng = SplitMix64::new(cfg.seed);
                let sample = sample_indices(&mut rng, n, sample_size(cfg.fraction, n));
                let cells = a.nrows as f64 * b.ncols as f64;
                // Eq. 5: the largest sampled outer product.
                let mut best = 0.0f64;
                for &k in &sample {
                    best = best.max(a.col_nnz(k) * b.row_nnz(k));
                }
                Ok((best / cells).clamp(0.0, 1.0))
            }
            OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
                let a = unwrap(self.name(), inputs, 0)?;
                let b = unwrap(self.name(), inputs, 1)?;
                ew_estimate(&cfg, op, a, b)
            }
            _ => {
                let syns: Vec<&SampleSynopsis> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| unwrap(self.name(), inputs, i))
                    .collect::<Result<_>>()?;
                reorg_estimate(op, &syns)
            }
        }
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        if matches!(op, OpKind::MatMul) {
            // The biased estimator "only applies to single matrix products"
            // (Section 2.5) — it cannot produce a usable intermediate.
            return Err(EstimatorError::unsupported(self.name(), op));
        }
        let est = self.estimate(op, inputs)?;
        propagate_common(self.name(), est, op, inputs)
    }

    fn supports_chains(&self) -> bool {
        false
    }
}

impl SparsityEstimator for UnbiasedSamplingEstimator {
    fn cache_key(&self) -> String {
        format!("{}:f={},seed={}", self.name(), self.fraction, self.seed)
    }

    fn name(&self) -> &'static str {
        "SampleUB"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Sample(SampleSynopsis::of(m)))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        let cfg = SampleConfig {
            fraction: self.fraction,
            seed: self.seed,
        };
        match op {
            OpKind::MatMul => {
                let a = unwrap(self.name(), inputs, 0)?;
                let b = unwrap(self.name(), inputs, 1)?;
                let n = a.ncols;
                if n == 0 {
                    return Ok(0.0);
                }
                let mut rng = SplitMix64::new(cfg.seed);
                let sample = sample_indices(&mut rng, n, sample_size(cfg.fraction, n));
                let cells = a.nrows as f64 * b.ncols as f64;
                if cells == 0.0 {
                    return Ok(0.0);
                }
                // Eq. 16: s_C = 1 - (1 - v̄)^q · Π_{k∈S} (1 - v_k).
                let mut log_prod = 0.0f64;
                let mut v_sum = 0.0f64;
                for &k in &sample {
                    let v = (a.col_nnz(k) * b.row_nnz(k) / cells).clamp(0.0, 1.0);
                    v_sum += v;
                    if v >= 1.0 {
                        return Ok(1.0);
                    }
                    log_prod += (-v).ln_1p();
                }
                let v_bar = v_sum / sample.len() as f64;
                let q = (n - sample.len()) as f64;
                if v_bar >= 1.0 {
                    return Ok(1.0);
                }
                let s = 1.0 - (q * (-v_bar).ln_1p() + log_prod).exp();
                Ok(s.clamp(0.0, 1.0))
            }
            OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
                let a = unwrap(self.name(), inputs, 0)?;
                let b = unwrap(self.name(), inputs, 1)?;
                ew_estimate(&cfg, op, a, b)
            }
            _ => {
                let syns: Vec<&SampleSynopsis> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| unwrap(self.name(), inputs, i))
                    .collect::<Result<_>>()?;
                reorg_estimate(op, &syns)
            }
        }
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        let est = self.estimate(op, inputs)?;
        propagate_common(self.name(), est, op, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(m: &CsrMatrix) -> Synopsis {
        Synopsis::Sample(SampleSynopsis::of(&Arc::new(m.clone())))
    }

    #[test]
    fn biased_is_lower_bound() {
        for seed in 0..8u64 {
            let mut r = rng(seed);
            let a = gen::rand_uniform(&mut r, 60, 50, 0.08);
            let b = gen::rand_uniform(&mut r, 50, 40, 0.1);
            let e = BiasedSamplingEstimator {
                fraction: 0.2,
                seed,
            };
            let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
            let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
            assert!(est <= truth + 1e-12, "biased {est} > truth {truth}");
        }
    }

    #[test]
    fn biased_with_full_sample_still_biased() {
        // Even |S| = n does not converge to the truth (Section 2.3): the
        // estimate is the largest single outer product.
        let a = CsrMatrix::from_triples(4, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let b = CsrMatrix::from_triples(2, 4, vec![(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let e = BiasedSamplingEstimator {
            fraction: 1.0,
            seed: 1,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
        // True output has 2 non-zeros; the largest outer product has 1.
        assert!((est - 1.0 / 16.0).abs() < 1e-12);
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        assert!(est < truth);
    }

    #[test]
    fn unbiased_close_on_uniform_data() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 150, 120, 0.03);
        let b = gen::rand_uniform(&mut r, 120, 150, 0.04);
        let e = UnbiasedSamplingEstimator {
            fraction: 0.3,
            seed: 9,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.25, "relative error {rel}");
    }

    #[test]
    fn unbiased_with_full_sample_equals_mnc_fallback_form() {
        // For |S| = n Eq. 16 reduces to 1 - Π(1 - v_k) — the same form as
        // MNC's fallback over m·l cells (Appendix A).
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 30, 20, 0.1);
        let b = gen::rand_uniform(&mut r, 20, 30, 0.15);
        let e = UnbiasedSamplingEstimator {
            fraction: 1.0,
            seed: 2,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
        let ca = mnc_matrix::stats::col_nnz_counts(&a);
        let rb = mnc_matrix::stats::row_nnz_counts(&b);
        let expect = mnc_core::estimate::vector_edm(&ca, &rb, 900.0);
        assert!((est - expect).abs() < 1e-12);
    }

    #[test]
    fn biased_rejects_chains() {
        let mut r = rng(7);
        let a = gen::rand_uniform(&mut r, 10, 10, 0.2);
        let e = BiasedSamplingEstimator::default();
        assert!(e.propagate(&OpKind::MatMul, &[&syn(&a), &syn(&a)]).is_err());
        assert!(!e.supports_chains());
    }

    #[test]
    fn unbiased_supports_chains() {
        let mut r = rng(8);
        let a = gen::rand_uniform(&mut r, 20, 20, 0.15);
        let e = UnbiasedSamplingEstimator::default();
        let mid = e.propagate(&OpKind::MatMul, &[&syn(&a), &syn(&a)]).unwrap();
        // The propagated synopsis has no matrix but still supports another
        // product via the uniform column-count assumption.
        let est = e.estimate(&OpKind::MatMul, &[&mid, &syn(&a)]).unwrap();
        assert!((0.0..=1.0).contains(&est));
        assert!(e.supports_chains());
    }

    #[test]
    fn ew_sampling_close_to_truth() {
        let mut r = rng(9);
        let a = gen::rand_uniform(&mut r, 100, 50, 0.25);
        let b = gen::rand_uniform(&mut r, 100, 50, 0.3);
        let e = BiasedSamplingEstimator {
            fraction: 0.5,
            seed: 3,
        };
        let add = e.estimate(&OpKind::EwAdd, &[&syn(&a), &syn(&b)]).unwrap();
        let mul = e.estimate(&OpKind::EwMul, &[&syn(&a), &syn(&b)]).unwrap();
        let t_add = ops::ew_add(&a, &b).unwrap().sparsity();
        let t_mul = ops::ew_mul(&a, &b).unwrap().sparsity();
        assert!((add - t_add).abs() < 0.05, "add {add} vs {t_add}");
        assert!((mul - t_mul).abs() < 0.05, "mul {mul} vs {t_mul}");
    }

    #[test]
    fn reorg_exact_from_metadata() {
        let mut r = rng(10);
        let a = gen::rand_uniform(&mut r, 12, 9, 0.3);
        let e = UnbiasedSamplingEstimator::default();
        let t = e.estimate(&OpKind::Transpose, &[&syn(&a)]).unwrap();
        assert!((t - a.sparsity()).abs() < 1e-12);
        let z = e.estimate(&OpKind::Eq0, &[&syn(&a)]).unwrap();
        assert!((z - (1.0 - a.sparsity())).abs() < 1e-12);
    }
}
