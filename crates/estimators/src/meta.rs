//! Naive metadata estimators `E_ac` (average case) and `E_wc` (worst case)
//! — Section 2.1, Eq. 1–2.
//!
//! Both derive output sparsity solely from the input shapes and non-zero
//! counts, at `O(1)` time and space. `E_ac` assumes uniformly distributed,
//! independent non-zeros; `E_wc` assumes adversarial alignment and is an
//! upper bound (over-estimation bias).

use std::sync::Arc;

use mnc_matrix::CsrMatrix;

use crate::{eac, OpKind, Result, SparsityEstimator, Synopsis};

/// Shape plus (estimated) non-zero count — the only state the metadata
/// estimators carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaSynopsis {
    /// Rows of the described matrix.
    pub nrows: usize,
    /// Columns of the described matrix.
    pub ncols: usize,
    /// (Estimated) non-zero count; fractional for propagated synopses.
    pub nnz: f64,
}

impl MetaSynopsis {
    /// Measured heap bytes: the metadata synopsis is plain-old-data, so
    /// there are none (Table 1's `O(1)` space).
    pub fn heap_bytes(&self) -> u64 {
        0
    }

    /// Sparsity implied by the synopsis.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            (self.nnz / cells).clamp(0.0, 1.0)
        }
    }
}

/// Which variant of the metadata estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    AverageCase,
    WorstCase,
}

/// `E_ac`: the unbiased average-case metadata estimator (Eq. 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MetaAcEstimator;

/// `E_wc`: the conservative worst-case metadata estimator (Eq. 2), used for
/// worst-case memory estimates; biased toward over-estimation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetaWcEstimator;

fn meta_of(m: &CsrMatrix) -> MetaSynopsis {
    MetaSynopsis {
        nrows: m.nrows(),
        ncols: m.ncols(),
        nnz: m.nnz() as f64,
    }
}

fn unwrap_meta<'a>(
    name: &'static str,
    inputs: &[&'a Synopsis],
    idx: usize,
) -> Result<&'a MetaSynopsis> {
    crate::expect_synopsis!(name, Synopsis::Meta, inputs, idx)
}

fn estimate(
    name: &'static str,
    variant: Variant,
    op: &OpKind,
    inputs: &[&Synopsis],
) -> Result<f64> {
    let a = unwrap_meta(name, inputs, 0)?;
    let (sa, m, n) = (a.sparsity(), a.nrows as f64, a.ncols as f64);
    let s = match op {
        OpKind::MatMul => {
            let b = unwrap_meta(name, inputs, 1)?;
            let sb = b.sparsity();
            match variant {
                // Eq. 1: s_C = 1 - (1 - s_A s_B)^n.
                Variant::AverageCase => eac(sa, sb, n),
                // Eq. 2: s_C = min(1, s_A n) · min(1, s_B n).
                Variant::WorstCase => (sa * n).min(1.0) * (sb * n).min(1.0),
            }
        }
        // Under A1, max has the union pattern of `+` (Section 5's spatial
        // pattern) and min the intersection pattern of `⊙`.
        OpKind::EwAdd | OpKind::EwMax => {
            let b = unwrap_meta(name, inputs, 1)?;
            match variant {
                Variant::AverageCase => crate::prob_or(sa, b.sparsity()),
                Variant::WorstCase => (sa + b.sparsity()).min(1.0),
            }
        }
        OpKind::EwMul | OpKind::EwMin => {
            let b = unwrap_meta(name, inputs, 1)?;
            match variant {
                Variant::AverageCase => sa * b.sparsity(),
                Variant::WorstCase => sa.min(b.sparsity()),
            }
        }
        OpKind::Transpose | OpKind::Reshape { .. } | OpKind::Neq0 => sa,
        OpKind::Eq0 => 1.0 - sa,
        OpKind::DiagV2M => {
            if m == 0.0 {
                0.0
            } else {
                a.nnz / (m * m)
            }
        }
        // Expected diagonal occupancy under uniformity: nnz/n hits over m
        // output cells.
        OpKind::DiagM2V => {
            if m == 0.0 || n == 0.0 {
                0.0
            } else {
                match variant {
                    Variant::AverageCase => a.nnz / (n * m),
                    Variant::WorstCase => (a.nnz / m).min(1.0),
                }
            }
        }
        OpKind::Rbind => {
            let b = unwrap_meta(name, inputs, 1)?;
            let cells = (a.nrows + b.nrows) as f64 * n;
            if cells == 0.0 {
                0.0
            } else {
                (a.nnz + b.nnz) / cells
            }
        }
        OpKind::Cbind => {
            let b = unwrap_meta(name, inputs, 1)?;
            let cells = m * (a.ncols + b.ncols) as f64;
            if cells == 0.0 {
                0.0
            } else {
                (a.nnz + b.nnz) / cells
            }
        }
    };
    Ok(s.clamp(0.0, 1.0))
}

fn propagate(
    name: &'static str,
    variant: Variant,
    op: &OpKind,
    inputs: &[&Synopsis],
) -> Result<Synopsis> {
    let shapes: Vec<(usize, usize)> = inputs.iter().map(|s| s.shape()).collect();
    let (rows, cols) = op.output_shape(&shapes)?;
    let s = estimate(name, variant, op, inputs)?;
    Ok(Synopsis::Meta(MetaSynopsis {
        nrows: rows,
        ncols: cols,
        nnz: s * rows as f64 * cols as f64,
    }))
}

impl SparsityEstimator for MetaAcEstimator {
    fn name(&self) -> &'static str {
        "MetaAC"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Meta(meta_of(m)))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        estimate(self.name(), Variant::AverageCase, op, inputs)
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        propagate(self.name(), Variant::AverageCase, op, inputs)
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }
}

impl SparsityEstimator for MetaWcEstimator {
    fn name(&self) -> &'static str {
        "MetaWC"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Meta(meta_of(m)))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        estimate(self.name(), Variant::WorstCase, op, inputs)
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        propagate(self.name(), Variant::WorstCase, op, inputs)
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn syn(m: &CsrMatrix) -> Synopsis {
        Synopsis::Meta(meta_of(m))
    }

    #[test]
    fn eac_on_uniform_random_product_is_close() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = gen::rand_uniform(&mut rng, 200, 150, 0.02);
        let b = gen::rand_uniform(&mut rng, 150, 180, 0.03);
        let est = MetaAcEstimator
            .estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth);
        assert!(rel < 1.2, "relative error {rel}");
    }

    #[test]
    fn ewc_is_upper_bound_on_random_products() {
        for seed in 0..10u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
            let a = gen::rand_uniform(&mut rng, 60, 50, 0.05);
            let b = gen::rand_uniform(&mut rng, 50, 40, 0.08);
            let est = MetaWcEstimator
                .estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)])
                .unwrap();
            let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
            assert!(est >= truth - 1e-12, "wc {est} < truth {truth}");
        }
    }

    #[test]
    fn wc_is_tight_for_aligned_outer_product() {
        // The adversarial pattern E_wc assumes: aligned column/row vectors.
        let n = 50;
        let c = CsrMatrix::from_triples(n, n, (0..n).map(|i| (i, 0usize, 1.0))).unwrap();
        let r = CsrMatrix::from_triples(n, n, (0..n).map(|j| (0usize, j, 1.0))).unwrap();
        let est = MetaWcEstimator
            .estimate(&OpKind::MatMul, &[&syn(&c), &syn(&r)])
            .unwrap();
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_estimates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = gen::rand_uniform(&mut rng, 100, 100, 0.2);
        let b = gen::rand_uniform(&mut rng, 100, 100, 0.3);
        let add = MetaAcEstimator
            .estimate(&OpKind::EwAdd, &[&syn(&a), &syn(&b)])
            .unwrap();
        let mul = MetaAcEstimator
            .estimate(&OpKind::EwMul, &[&syn(&a), &syn(&b)])
            .unwrap();
        let (sa, sb) = (a.sparsity(), b.sparsity());
        assert!((add - (sa + sb - sa * sb)).abs() < 1e-12);
        assert!((mul - sa * sb).abs() < 1e-12);
        let wc_mul = MetaWcEstimator
            .estimate(&OpKind::EwMul, &[&syn(&a), &syn(&b)])
            .unwrap();
        assert!((wc_mul - sa.min(sb)).abs() < 1e-12);
    }

    #[test]
    fn reorg_estimates_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = gen::rand_uniform(&mut rng, 30, 20, 0.1);
        let s = a.sparsity();
        for op in [
            OpKind::Transpose,
            OpKind::Reshape { rows: 20, cols: 30 },
            OpKind::Neq0,
        ] {
            let est = MetaAcEstimator.estimate(&op, &[&syn(&a)]).unwrap();
            assert!((est - s).abs() < 1e-12, "{op:?}");
        }
        let eq0 = MetaAcEstimator.estimate(&OpKind::Eq0, &[&syn(&a)]).unwrap();
        assert!((eq0 - (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn propagation_tracks_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = gen::rand_uniform(&mut rng, 10, 20, 0.1);
        let b = gen::rand_uniform(&mut rng, 20, 5, 0.2);
        let p = MetaAcEstimator
            .propagate(&OpKind::MatMul, &[&syn(&a), &syn(&b)])
            .unwrap();
        assert_eq!(p.shape(), (10, 5));
        let t = MetaAcEstimator
            .propagate(&OpKind::Transpose, &[&p])
            .unwrap();
        assert_eq!(t.shape(), (5, 10));
    }

    #[test]
    fn diag_and_bind_estimates() {
        let v = CsrMatrix::from_triples(8, 1, vec![(1, 0, 1.0), (2, 0, 1.0)]).unwrap();
        let d = MetaAcEstimator
            .estimate(&OpKind::DiagV2M, &[&syn(&v)])
            .unwrap();
        assert!((d - 2.0 / 64.0).abs() < 1e-12);

        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = gen::rand_uniform(&mut rng, 6, 4, 0.5);
        let b = gen::rand_uniform(&mut rng, 2, 4, 0.25);
        let rb = MetaAcEstimator
            .estimate(&OpKind::Rbind, &[&syn(&a), &syn(&b)])
            .unwrap();
        let truth = ops::rbind(&a, &b).unwrap().sparsity();
        assert!((rb - truth).abs() < 1e-12);
    }
}
