//! # mnc-estimators — baseline sparsity estimators
//!
//! Every estimator surveyed or introduced by the paper, implemented behind a
//! single [`SparsityEstimator`] trait so the SparsEst benchmark can run them
//! uniformly:
//!
//! | Module | Estimator | Paper section |
//! |---|---|---|
//! | [`meta`] | `E_ac` average-case and `E_wc` worst-case metadata estimators | §2.1, Eq. 1–2 |
//! | [`bitset`] | `E_bmm` exact boolean matrix multiply (single- and multi-threaded) | §2.1, Eq. 3; Appendix B |
//! | [`density_map`] | `E_dm` block density map with configurable block size | §2.2, Eq. 4 |
//! | [`sampling`] | `E_smpl` biased sampling (Eq. 5) and the unbiased extension (Eq. 16) | §2.3; Appendix A |
//! | [`hashing`] | KMV-style hash-and-sample estimator | Appendix A, [Amossen et al.] |
//! | [`layered_graph`] | `E_gph` Cohen's layered graph with exponential r-vectors | §2.4, Eq. 6 |
//! | [`mnc`] | the MNC estimator (adapter over [`mnc_core`]) | §3–4 |
//!
//! ## Synopsis model
//!
//! Each estimator builds a [`Synopsis`] per base matrix, estimates operation
//! output sparsity from synopses, and *propagates* synopses over operations
//! so chains/DAGs can be estimated recursively. Estimators that do not
//! support an operation (e.g. the layered graph on element-wise operations,
//! biased sampling on chains) return [`EstimatorError::Unsupported`], which
//! the benchmark reports as `✗` — exactly how the paper's figures mark them.

pub mod analysis;
pub mod bitset;
pub mod density_map;
pub mod dynamic_density_map;
pub mod hashing;
pub mod instrument;
pub mod layered_graph;
pub mod meta;
pub mod mnc;
pub mod sampling;

use std::sync::Arc;

use mnc_kernels::ScratchArena;
use mnc_matrix::CsrMatrix;

pub use analysis::{Complexity, COMPLEXITY_TABLE};
pub use bitset::BitsetEstimator;
pub use density_map::DensityMapEstimator;
pub use dynamic_density_map::DynamicDensityMapEstimator;
pub use hashing::HashEstimator;
pub use instrument::InstrumentedEstimator;
pub use layered_graph::LayeredGraphEstimator;
pub use meta::{MetaAcEstimator, MetaWcEstimator};
pub use mnc::MncEstimator;
pub use sampling::{BiasedSamplingEstimator, UnbiasedSamplingEstimator};

/// The shared operation/error vocabulary. [`OpKind`] and [`EstimatorError`]
/// moved to [`mnc_core`] (see `mnc_core::op`) so the core sketch and every
/// estimator speak one language; re-exported here so existing imports keep
/// compiling unchanged.
pub use mnc_core::op::{EstimatorError, OpKind, Result};

/// A per-matrix synopsis. One enum instead of trait objects so synopses can
/// be stored, cloned, and size-accounted uniformly by the benchmark runner.
#[derive(Debug, Clone)]
pub enum Synopsis {
    /// Shape + estimated non-zero count only.
    Meta(meta::MetaSynopsis),
    /// Packed boolean bit matrix.
    Bitset(bitset::BitsetSynopsis),
    /// Block density map.
    DensityMap(density_map::DmSynopsis),
    /// Adaptive quad-tree density map (the §2.2 dynamic extension).
    QuadTree(dynamic_density_map::QuadTreeSynopsis),
    /// Sampling: retained base matrix (leaves) or propagated metadata.
    Sample(sampling::SampleSynopsis),
    /// Hashing: retained base matrix (leaves only).
    Hash(hashing::HashSynopsis),
    /// Layered graph: per-column r-vectors plus the leaf pattern.
    LayeredGraph(layered_graph::LgSynopsis),
    /// MNC sketch.
    Mnc(mnc::MncSynopsis),
}

impl Synopsis {
    /// Shape of the matrix the synopsis describes.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Synopsis::Meta(s) => (s.nrows, s.ncols),
            Synopsis::Bitset(s) => (s.nrows(), s.ncols()),
            Synopsis::DensityMap(s) => (s.nrows, s.ncols),
            Synopsis::QuadTree(s) => s.shape(),
            Synopsis::Sample(s) => (s.nrows, s.ncols),
            Synopsis::Hash(s) => s.shape(),
            Synopsis::LayeredGraph(s) => s.shape(),
            Synopsis::Mnc(s) => (s.sketch.nrows, s.sketch.ncols),
        }
    }

    /// The sparsity the synopsis implies for its own matrix.
    pub fn sparsity(&self) -> f64 {
        match self {
            Synopsis::Meta(s) => s.sparsity(),
            Synopsis::Bitset(s) => s.sparsity(),
            Synopsis::DensityMap(s) => s.sparsity(),
            Synopsis::QuadTree(s) => s.sparsity(),
            Synopsis::Sample(s) => s.sparsity(),
            Synopsis::Hash(s) => s.sparsity(),
            Synopsis::LayeredGraph(s) => s.sparsity(),
            Synopsis::Mnc(s) => s.sketch.sparsity(),
        }
    }

    /// Heap bytes the synopsis occupies (measured, not analytical).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Synopsis::Meta(_) => std::mem::size_of::<meta::MetaSynopsis>() as u64,
            Synopsis::Bitset(s) => s.size_bytes(),
            Synopsis::DensityMap(s) => s.size_bytes(),
            Synopsis::QuadTree(s) => s.size_bytes(),
            Synopsis::Sample(s) => s.size_bytes(),
            Synopsis::Hash(s) => s.size_bytes(),
            Synopsis::LayeredGraph(s) => s.size_bytes(),
            Synopsis::Mnc(s) => s.sketch.size_bytes() as u64,
        }
    }

    /// Measured heap bytes *retained* by the synopsis, from buffer
    /// capacities — what the allocator actually holds, as opposed to the
    /// logical [`Synopsis::size_bytes`] accounting and the analytic
    /// Figure 9 formulas ([`analysis::synopsis_sizes`]).
    ///
    /// Shared `Arc` payloads (the base matrices retained by the sampling,
    /// hashing, and layered-graph synopses) are attributed **fully to each
    /// holder**: the number answers "how much heap does dropping everything
    /// but this synopsis still pin", not "how much was allocated for it".
    /// Validated against the allocation-tracking global allocator and the
    /// Figure 9 formulas by the `mnc-perf` harness.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Synopsis::Meta(s) => s.heap_bytes(),
            Synopsis::Bitset(s) => s.heap_bytes(),
            Synopsis::DensityMap(s) => s.heap_bytes(),
            Synopsis::QuadTree(s) => s.heap_bytes(),
            Synopsis::Sample(s) => s.heap_bytes(),
            Synopsis::Hash(s) => s.heap_bytes(),
            Synopsis::LayeredGraph(s) => s.heap_bytes(),
            Synopsis::Mnc(s) => s.sketch.heap_bytes(),
        }
    }

    /// The non-zero count the synopsis implies for its own matrix — exact
    /// where the synopsis stores it (MNC, bitset, quad tree), otherwise
    /// `round(sparsity · m · n)`.
    pub fn nnz(&self) -> u64 {
        match self {
            Synopsis::Mnc(s) => s.sketch.meta.nnz,
            Synopsis::Bitset(s) => s.count_ones(),
            Synopsis::QuadTree(s) => s.nnz(),
            _ => {
                let (m, n) = self.shape();
                (self.sparsity() * m as f64 * n as f64).round() as u64
            }
        }
    }

    /// Returns the synopsis's reusable buffers to `arena` so subsequent
    /// propagations can lease them instead of allocating. Only the MNC
    /// sketch's count vectors participate today; every other synopsis is
    /// simply dropped.
    pub fn recycle_into(self, arena: &mut ScratchArena) {
        if let Synopsis::Mnc(s) = self {
            s.sketch.recycle_into(arena);
        }
    }
}

/// The common estimator interface the SparsEst benchmark drives.
///
/// The trait is object-safe: the expression layer and the benchmark runner
/// hold estimators as `Box<dyn SparsityEstimator>`.
pub trait SparsityEstimator {
    /// Short name used in result tables (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Builds the synopsis of a base (leaf) matrix.
    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis>;

    /// Estimates the output sparsity of `op` applied to the inputs.
    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64>;

    /// Derives the output synopsis of `op`, enabling recursive estimation
    /// over expression chains and DAGs.
    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis>;

    /// [`SparsityEstimator::propagate`] with caller-provided scratch:
    /// estimators that build count-vector outputs may lease their buffers
    /// from `arena` instead of allocating fresh ones. The result must be
    /// bit-identical to `propagate`; the default implementation ignores the
    /// arena and delegates.
    fn propagate_scratch(
        &self,
        op: &OpKind,
        inputs: &[&Synopsis],
        _arena: &mut ScratchArena,
    ) -> Result<Synopsis> {
        self.propagate(op, inputs)
    }

    /// Whether the estimator handles matrix product *chains* (the `®` column
    /// of Table 1).
    fn supports_chains(&self) -> bool {
        true
    }

    /// Whether `build`/`estimate`/`propagate` results are pure functions of
    /// their arguments — independent of the order in which calls interleave
    /// across expression nodes. Estimators that draw from a shared
    /// sequential generator (e.g. MNC with probabilistic rounding) are *not*
    /// order-invariant: re-ordering the DAG walk re-orders their draws.
    /// Parallel walks are gated on this returning `true`, so the
    /// conservative default keeps unknown estimators sequential.
    fn order_invariant(&self) -> bool {
        false
    }

    /// A [`Sync`] view of this estimator for sharing across worker threads,
    /// or `None` (the default) if it must stay on one thread. Split from
    /// the trait's lack of a `Sync` supertrait so single-threaded estimator
    /// implementations never pay for thread safety.
    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        None
    }

    /// Key distinguishing synopses this estimator builds from those of other
    /// estimators *and other configurations of the same estimator* — used by
    /// `mnc_expr::EstimationContext` to key its synopsis cache. Estimators
    /// with config knobs that change the synopsis (block size, sample
    /// fraction, MNC basic vs. full, ...) must fold them in here.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }
}

impl<E: SparsityEstimator + ?Sized> SparsityEstimator for Box<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        (**self).build(m)
    }
    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        (**self).estimate(op, inputs)
    }
    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        (**self).propagate(op, inputs)
    }
    fn propagate_scratch(
        &self,
        op: &OpKind,
        inputs: &[&Synopsis],
        arena: &mut ScratchArena,
    ) -> Result<Synopsis> {
        (**self).propagate_scratch(op, inputs, arena)
    }
    fn supports_chains(&self) -> bool {
        (**self).supports_chains()
    }
    fn order_invariant(&self) -> bool {
        (**self).order_invariant()
    }
    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        (**self).as_sync()
    }
    fn cache_key(&self) -> String {
        (**self).cache_key()
    }
}

/// Average-case metadata estimator `E_ac` (Eq. 1): complementary probability
/// of an output cell staying zero under uniformity and independence.
/// Shared by the density map and several tests, hence exposed here.
#[inline]
pub fn eac(sa: f64, sb: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let v = (sa * sb).clamp(0.0, 1.0);
    if v >= 1.0 {
        return 1.0;
    }
    1.0 - (n * (-v).ln_1p()).exp()
}

/// Probabilistic disjunction `s ⊕ s' = s + s' - s·s'` (Eq. 4).
#[inline]
pub fn prob_or(s1: f64, s2: f64) -> f64 {
    (s1 + s2 - s1 * s2).clamp(0.0, 1.0)
}

/// Helper used by several estimators: unwrap exactly `n` synopses of one
/// variant or report an internal error.
macro_rules! expect_synopsis {
    ($name:expr, $variant:path, $inputs:expr, $idx:expr) => {
        match $inputs.get($idx) {
            Some($variant(s)) => Ok(s),
            _ => Err($crate::EstimatorError::Internal(format!(
                "{}: input {} is not a {} synopsis",
                $name,
                $idx,
                stringify!($variant)
            ))),
        }
    };
}
pub(crate) use expect_synopsis;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eac_matches_closed_form() {
        let s = eac(0.1, 0.2, 50.0);
        let expect = 1.0 - (1.0f64 - 0.02).powi(50);
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn eac_saturates() {
        assert_eq!(eac(1.0, 1.0, 10.0), 1.0);
        assert_eq!(eac(0.5, 0.5, 0.0), 0.0);
        assert_eq!(eac(0.0, 1.0, 10.0), 0.0);
    }

    #[test]
    fn prob_or_bounds() {
        assert_eq!(prob_or(0.0, 0.0), 0.0);
        assert_eq!(prob_or(1.0, 0.3), 1.0);
        assert!((prob_or(0.5, 0.5) - 0.75).abs() < 1e-12);
    }

    // (The OpKind/EstimatorError tests moved to mnc_core::op alongside the
    // definitions.)

    #[test]
    fn trait_is_object_safe_and_boxed_estimators_delegate() {
        let boxed: Box<dyn SparsityEstimator> = Box::new(MetaAcEstimator);
        assert_eq!(boxed.name(), "MetaAC");
        assert_eq!(boxed.cache_key(), boxed.name());
        let m = Arc::new(CsrMatrix::identity(4));
        let syn = boxed.build(&m).unwrap();
        assert_eq!(syn.shape(), (4, 4));
        assert_eq!(syn.nnz(), 4);
    }

    #[test]
    fn heap_bytes_pinned_on_small_fixtures() {
        let m = Arc::new(CsrMatrix::identity(8));
        let csr = std::mem::size_of::<CsrMatrix>() as u64;

        // Meta: plain-old-data, zero heap (Table 1's O(1)).
        let meta = MetaAcEstimator.build(&m).unwrap();
        assert_eq!(meta.heap_bytes(), 0);

        // Density map, block 4: 2x2 grid of f64 = 32 B.
        let dm = DensityMapEstimator::with_block(4).build(&m).unwrap();
        assert_eq!(dm.heap_bytes(), 32);

        // Bitset: 8 rows x 1 word = 64 B.
        let bs = BitsetEstimator::default().build(&m).unwrap();
        assert_eq!(bs.heap_bytes(), 64);

        // MNC on the identity: hr + hc only (max counts are 1, so no
        // extended vectors) = 2 · 8 · 4 B = 64 B.
        let mnc = MncEstimator::new().build(&m).unwrap();
        assert_eq!(mnc.heap_bytes(), 64);

        // Quad tree, capacity above nnz: one inline leaf, zero heap.
        let qt = DynamicDensityMapEstimator::default().build(&m).unwrap();
        assert_eq!(qt.heap_bytes(), 0);

        // Sampling retains the base matrix fully (shared Arc semantics).
        let sample = BiasedSamplingEstimator::default().build(&m).unwrap();
        assert_eq!(sample.heap_bytes(), csr + m.heap_bytes());

        // Hashing retains base + transpose.
        let hash = HashEstimator::default().build(&m).unwrap();
        assert_eq!(
            hash.heap_bytes(),
            2 * csr + m.heap_bytes() + m.transpose().heap_bytes()
        );

        // Layered graph: rounds · ncols f32 r-vectors + retained pattern.
        let lge = LayeredGraphEstimator::default();
        let lg = lge.build(&m).unwrap();
        assert_eq!(
            lg.heap_bytes(),
            (lge.rounds * 8 * 4) as u64 + csr + m.heap_bytes()
        );
    }

    #[test]
    fn quad_tree_heap_counts_boxed_regions() {
        // 2x2 identity with leaf capacity 1 splits exactly once: four boxed
        // children under the inline root.
        let m = Arc::new(CsrMatrix::identity(2));
        let est = DynamicDensityMapEstimator {
            leaf_capacity: 1,
            max_grid: 64,
            ..Default::default()
        };
        let syn = est.build(&m).unwrap();
        let Synopsis::QuadTree(qt) = &syn else {
            panic!("expected quad tree");
        };
        assert_eq!(syn.heap_bytes(), 4 * qt.size_bytes() / qt.leaves() as u64);
    }

    #[test]
    fn measured_heap_agrees_with_figure9_for_mnc_and_bitset() {
        use rand::SeedableRng;
        let mut r = rand::rngs::StdRng::seed_from_u64(42);
        let (rows, cols) = (200usize, 120usize);
        let m = Arc::new(mnc_matrix::gen::rand_uniform(&mut r, rows, cols, 0.05));
        let sizes = analysis::synopsis_sizes(rows as f64, cols as f64, m.nnz() as f64, 256.0, 32.0);

        // Bitset: the analytic m·n/8 ignores the row padding to whole 64-bit
        // words, so measured/analytic lies in [1, n/(64·floor(n/64))) —
        // under 7% here, under 15% for any n ≥ 64. Documented tolerance: 15%.
        let bs = BitsetEstimator::default().build(&m).unwrap();
        let rel = bs.heap_bytes() as f64 / sizes.bitset;
        assert!((1.0..1.15).contains(&rel), "bitset measured/analytic {rel}");

        // MNC: the analytic 4·2·(m+n) assumes the extended vectors are
        // materialized; a 5%-dense random matrix builds them, so measured
        // matches the formula exactly (tolerance 1% for slack).
        let mnc = MncEstimator::new().build(&m).unwrap();
        let rel = mnc.heap_bytes() as f64 / sizes.mnc;
        assert!((rel - 1.0).abs() < 0.01, "mnc measured/analytic {rel}");
    }

    #[test]
    fn synopsis_nnz_is_exact_for_counting_synopses() {
        let m = Arc::new(
            CsrMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (2, 0, 2.0), (2, 2, 3.0)]).unwrap(),
        );
        for est in [
            Box::new(MncEstimator::new()) as Box<dyn SparsityEstimator>,
            Box::new(BitsetEstimator::default()),
            Box::new(MetaAcEstimator),
        ] {
            let syn = est.build(&m).unwrap();
            assert_eq!(syn.nnz(), 3, "{}", est.name());
        }
    }
}
