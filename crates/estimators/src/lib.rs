//! # mnc-estimators — baseline sparsity estimators
//!
//! Every estimator surveyed or introduced by the paper, implemented behind a
//! single [`SparsityEstimator`] trait so the SparsEst benchmark can run them
//! uniformly:
//!
//! | Module | Estimator | Paper section |
//! |---|---|---|
//! | [`meta`] | `E_ac` average-case and `E_wc` worst-case metadata estimators | §2.1, Eq. 1–2 |
//! | [`bitset`] | `E_bmm` exact boolean matrix multiply (single- and multi-threaded) | §2.1, Eq. 3; Appendix B |
//! | [`density_map`] | `E_dm` block density map with configurable block size | §2.2, Eq. 4 |
//! | [`sampling`] | `E_smpl` biased sampling (Eq. 5) and the unbiased extension (Eq. 16) | §2.3; Appendix A |
//! | [`hashing`] | KMV-style hash-and-sample estimator | Appendix A, [Amossen et al.] |
//! | [`layered_graph`] | `E_gph` Cohen's layered graph with exponential r-vectors | §2.4, Eq. 6 |
//! | [`mnc`] | the MNC estimator (adapter over [`mnc_core`]) | §3–4 |
//!
//! ## Synopsis model
//!
//! Each estimator builds a [`Synopsis`] per base matrix, estimates operation
//! output sparsity from synopses, and *propagates* synopses over operations
//! so chains/DAGs can be estimated recursively. Estimators that do not
//! support an operation (e.g. the layered graph on element-wise operations,
//! biased sampling on chains) return [`EstimatorError::Unsupported`], which
//! the benchmark reports as `✗` — exactly how the paper's figures mark them.

pub mod analysis;
pub mod bitset;
pub mod density_map;
pub mod dynamic_density_map;
pub mod hashing;
pub mod layered_graph;
pub mod meta;
pub mod mnc;
pub mod sampling;

use std::fmt;
use std::sync::Arc;

use mnc_matrix::CsrMatrix;

pub use analysis::{Complexity, COMPLEXITY_TABLE};
pub use bitset::BitsetEstimator;
pub use density_map::DensityMapEstimator;
pub use dynamic_density_map::DynamicDensityMapEstimator;
pub use hashing::HashEstimator;
pub use layered_graph::LayeredGraphEstimator;
pub use meta::{MetaAcEstimator, MetaWcEstimator};
pub use mnc::MncEstimator;
pub use sampling::{BiasedSamplingEstimator, UnbiasedSamplingEstimator};

/// The operations the SparsEst benchmark exercises (paper Sections 3–4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Matrix product `A B`.
    MatMul,
    /// Element-wise addition `A + B`.
    EwAdd,
    /// Element-wise (Hadamard) multiplication `A ⊙ B`.
    EwMul,
    /// Element-wise maximum `max(A, B)` — under assumption A1 its pattern
    /// is the union, like `EwAdd` (the paper's spatial pattern where `max`
    /// replaces `∨`).
    EwMax,
    /// Element-wise minimum `min(A, B)` — pattern-equivalent to `EwMul`
    /// under A1.
    EwMin,
    /// Transposition `Aᵀ`.
    Transpose,
    /// Row-wise reshape to `rows x cols`.
    Reshape { rows: usize, cols: usize },
    /// `diag(v)`: column vector onto the diagonal.
    DiagV2M,
    /// `diag(A)`: diagonal extraction from a square matrix into an
    /// `m x 1` vector.
    DiagM2V,
    /// Row-wise concatenation.
    Rbind,
    /// Column-wise concatenation.
    Cbind,
    /// `A != 0` indicator.
    Neq0,
    /// `A == 0` indicator.
    Eq0,
}

impl OpKind {
    /// Number of operands the operation consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::MatMul
            | OpKind::EwAdd
            | OpKind::EwMul
            | OpKind::EwMax
            | OpKind::EwMin
            | OpKind::Rbind
            | OpKind::Cbind => 2,
            _ => 1,
        }
    }

    /// Output shape given input shapes; an error for incompatible shapes.
    pub fn output_shape(
        &self,
        inputs: &[(usize, usize)],
    ) -> Result<(usize, usize)> {
        let bad = |msg: &str| {
            Err(EstimatorError::Internal(format!(
                "{self:?}: incompatible shapes {inputs:?} ({msg})"
            )))
        };
        match self {
            OpKind::MatMul => {
                if inputs[0].1 != inputs[1].0 {
                    return bad("inner dimension");
                }
                Ok((inputs[0].0, inputs[1].1))
            }
            OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
                if inputs[0] != inputs[1] {
                    return bad("equal shapes required");
                }
                Ok(inputs[0])
            }
            OpKind::Transpose => Ok((inputs[0].1, inputs[0].0)),
            OpKind::Reshape { rows, cols } => {
                if inputs[0].0 * inputs[0].1 != rows * cols {
                    return bad("cell count");
                }
                Ok((*rows, *cols))
            }
            OpKind::DiagV2M => {
                if inputs[0].1 != 1 {
                    return bad("column vector required");
                }
                Ok((inputs[0].0, inputs[0].0))
            }
            OpKind::DiagM2V => {
                if inputs[0].0 != inputs[0].1 {
                    return bad("square matrix required");
                }
                Ok((inputs[0].0, 1))
            }
            OpKind::Rbind => {
                if inputs[0].1 != inputs[1].1 {
                    return bad("column count");
                }
                Ok((inputs[0].0 + inputs[1].0, inputs[0].1))
            }
            OpKind::Cbind => {
                if inputs[0].0 != inputs[1].0 {
                    return bad("row count");
                }
                Ok((inputs[0].0, inputs[0].1 + inputs[1].1))
            }
            OpKind::Neq0 | OpKind::Eq0 => Ok(inputs[0]),
        }
    }
}

/// Errors surfaced by estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimatorError {
    /// The estimator does not support the operation (reported as `✗`).
    Unsupported {
        estimator: &'static str,
        op: String,
    },
    /// The synopsis would exceed the configured memory budget — mirrors the
    /// paper's bitset out-of-memory cases (e.g. ≈8 TB for B2.1).
    SynopsisTooLarge {
        estimator: &'static str,
        bytes: u64,
        limit: u64,
    },
    /// Internal invariant violation (shape mismatch fed from the DAG, ...).
    Internal(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::Unsupported { estimator, op } => {
                write!(f, "{estimator} does not support {op}")
            }
            EstimatorError::SynopsisTooLarge {
                estimator,
                bytes,
                limit,
            } => write!(
                f,
                "{estimator} synopsis of {bytes} B exceeds the {limit} B budget"
            ),
            EstimatorError::Internal(msg) => write!(f, "internal estimator error: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

/// Result alias for estimator operations.
pub type Result<T> = std::result::Result<T, EstimatorError>;

/// A per-matrix synopsis. One enum instead of trait objects so synopses can
/// be stored, cloned, and size-accounted uniformly by the benchmark runner.
#[derive(Debug, Clone)]
pub enum Synopsis {
    /// Shape + estimated non-zero count only.
    Meta(meta::MetaSynopsis),
    /// Packed boolean bit matrix.
    Bitset(bitset::BitsetSynopsis),
    /// Block density map.
    DensityMap(density_map::DmSynopsis),
    /// Adaptive quad-tree density map (the §2.2 dynamic extension).
    QuadTree(dynamic_density_map::QuadTreeSynopsis),
    /// Sampling: retained base matrix (leaves) or propagated metadata.
    Sample(sampling::SampleSynopsis),
    /// Hashing: retained base matrix (leaves only).
    Hash(hashing::HashSynopsis),
    /// Layered graph: per-column r-vectors plus the leaf pattern.
    LayeredGraph(layered_graph::LgSynopsis),
    /// MNC sketch.
    Mnc(mnc::MncSynopsis),
}

impl Synopsis {
    /// Shape of the matrix the synopsis describes.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Synopsis::Meta(s) => (s.nrows, s.ncols),
            Synopsis::Bitset(s) => (s.nrows(), s.ncols()),
            Synopsis::DensityMap(s) => (s.nrows, s.ncols),
            Synopsis::QuadTree(s) => s.shape(),
            Synopsis::Sample(s) => (s.nrows, s.ncols),
            Synopsis::Hash(s) => s.shape(),
            Synopsis::LayeredGraph(s) => s.shape(),
            Synopsis::Mnc(s) => (s.sketch.nrows, s.sketch.ncols),
        }
    }

    /// The sparsity the synopsis implies for its own matrix.
    pub fn sparsity(&self) -> f64 {
        match self {
            Synopsis::Meta(s) => s.sparsity(),
            Synopsis::Bitset(s) => s.sparsity(),
            Synopsis::DensityMap(s) => s.sparsity(),
            Synopsis::QuadTree(s) => s.sparsity(),
            Synopsis::Sample(s) => s.sparsity(),
            Synopsis::Hash(s) => s.sparsity(),
            Synopsis::LayeredGraph(s) => s.sparsity(),
            Synopsis::Mnc(s) => s.sketch.sparsity(),
        }
    }

    /// Heap bytes the synopsis occupies (measured, not analytical).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Synopsis::Meta(_) => std::mem::size_of::<meta::MetaSynopsis>() as u64,
            Synopsis::Bitset(s) => s.size_bytes(),
            Synopsis::DensityMap(s) => s.size_bytes(),
            Synopsis::QuadTree(s) => s.size_bytes(),
            Synopsis::Sample(s) => s.size_bytes(),
            Synopsis::Hash(s) => s.size_bytes(),
            Synopsis::LayeredGraph(s) => s.size_bytes(),
            Synopsis::Mnc(s) => s.sketch.size_bytes() as u64,
        }
    }
}

/// The common estimator interface the SparsEst benchmark drives.
pub trait SparsityEstimator {
    /// Short name used in result tables (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Builds the synopsis of a base (leaf) matrix.
    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis>;

    /// Estimates the output sparsity of `op` applied to the inputs.
    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64>;

    /// Derives the output synopsis of `op`, enabling recursive estimation
    /// over expression chains and DAGs.
    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis>;

    /// Whether the estimator handles matrix product *chains* (the `®` column
    /// of Table 1).
    fn supports_chains(&self) -> bool {
        true
    }
}

/// Average-case metadata estimator `E_ac` (Eq. 1): complementary probability
/// of an output cell staying zero under uniformity and independence.
/// Shared by the density map and several tests, hence exposed here.
#[inline]
pub fn eac(sa: f64, sb: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let v = (sa * sb).clamp(0.0, 1.0);
    if v >= 1.0 {
        return 1.0;
    }
    1.0 - (n * (-v).ln_1p()).exp()
}

/// Probabilistic disjunction `s ⊕ s' = s + s' - s·s'` (Eq. 4).
#[inline]
pub fn prob_or(s1: f64, s2: f64) -> f64 {
    (s1 + s2 - s1 * s2).clamp(0.0, 1.0)
}

/// Helper used by several estimators: unwrap exactly `n` synopses of one
/// variant or report an internal error.
macro_rules! expect_synopsis {
    ($name:expr, $variant:path, $inputs:expr, $idx:expr) => {
        match $inputs.get($idx) {
            Some($variant(s)) => Ok(s),
            _ => Err($crate::EstimatorError::Internal(format!(
                "{}: input {} is not a {} synopsis",
                $name,
                $idx,
                stringify!($variant)
            ))),
        }
    };
}
pub(crate) use expect_synopsis;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eac_matches_closed_form() {
        let s = eac(0.1, 0.2, 50.0);
        let expect = 1.0 - (1.0f64 - 0.02).powi(50);
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn eac_saturates() {
        assert_eq!(eac(1.0, 1.0, 10.0), 1.0);
        assert_eq!(eac(0.5, 0.5, 0.0), 0.0);
        assert_eq!(eac(0.0, 1.0, 10.0), 0.0);
    }

    #[test]
    fn prob_or_bounds() {
        assert_eq!(prob_or(0.0, 0.0), 0.0);
        assert_eq!(prob_or(1.0, 0.3), 1.0);
        assert!((prob_or(0.5, 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn op_output_shapes() {
        assert_eq!(
            OpKind::MatMul.output_shape(&[(2, 3), (3, 5)]).unwrap(),
            (2, 5)
        );
        assert!(OpKind::MatMul.output_shape(&[(2, 3), (4, 5)]).is_err());
        assert_eq!(OpKind::Transpose.output_shape(&[(2, 3)]).unwrap(), (3, 2));
        assert_eq!(
            OpKind::Reshape { rows: 6, cols: 1 }
                .output_shape(&[(2, 3)])
                .unwrap(),
            (6, 1)
        );
        assert!(OpKind::Reshape { rows: 4, cols: 2 }
            .output_shape(&[(2, 3)])
            .is_err());
        assert_eq!(
            OpKind::Rbind.output_shape(&[(2, 3), (4, 3)]).unwrap(),
            (6, 3)
        );
        assert_eq!(
            OpKind::Cbind.output_shape(&[(2, 3), (2, 4)]).unwrap(),
            (2, 7)
        );
        assert_eq!(OpKind::DiagV2M.output_shape(&[(5, 1)]).unwrap(), (5, 5));
        assert!(OpKind::DiagV2M.output_shape(&[(5, 2)]).is_err());
    }

    #[test]
    fn arity() {
        assert_eq!(OpKind::MatMul.arity(), 2);
        assert_eq!(OpKind::Transpose.arity(), 1);
        assert_eq!(OpKind::Eq0.arity(), 1);
        assert_eq!(OpKind::Rbind.arity(), 2);
    }

    #[test]
    fn error_display() {
        let e = EstimatorError::Unsupported {
            estimator: "LGraph",
            op: "EwMul".into(),
        };
        assert_eq!(e.to_string(), "LGraph does not support EwMul");
    }
}
