//! Hash- and sampling-based estimator (Appendix A; Amossen, Campagna, Pagh:
//! *Better Size Estimation for Sparse Matrix Products*).
//!
//! The estimator is scan-based: it iterates over all columns `A_{:t}` and
//! rows `B_{t:}`, keeps only rows/columns whose index hash falls below the
//! sample fraction, and maintains a KMV buffer of the `k` minimum pair
//! hashes of the surviving output coordinates `(i, j)`. The number of
//! distinct output non-zeros in the sampled sub-matrix follows from the KMV
//! estimate `(k - 1) / v_(k)`, scaled back by the two sampling rates.
//! Time `O(d + nnz(A, B) + matched pairs)`.

use std::sync::Arc;

use mnc_matrix::CsrMatrix;

use crate::{EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// Synopsis: the base matrix plus its transpose for column access.
/// The hash estimator only applies to single matrix products on base
/// matrices (Table 4 marks everything else `N/A`).
#[derive(Debug, Clone)]
pub struct HashSynopsis {
    matrix: Arc<CsrMatrix>,
    /// Transpose, giving `O(1)` access to the columns of `matrix`.
    transpose: Arc<CsrMatrix>,
}

impl HashSynopsis {
    /// Shape of the described matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.matrix.shape()
    }

    /// Exact sparsity (the base matrix is retained).
    pub fn sparsity(&self) -> f64 {
        self.matrix.sparsity()
    }

    /// Size of the auxiliary transpose (the scan structure).
    pub fn size_bytes(&self) -> u64 {
        (self.transpose.nnz() * (8 + 4) + (self.transpose.nrows() + 1) * 8) as u64
    }

    /// Measured heap bytes retained: base matrix plus transpose, each
    /// attributed fully (shared `Arc` payloads count for every holder).
    pub fn heap_bytes(&self) -> u64 {
        2 * std::mem::size_of::<CsrMatrix>() as u64
            + self.matrix.heap_bytes()
            + self.transpose.heap_bytes()
    }
}

/// 64-bit mix used as the (pairwise-independent in practice) hash family.
#[inline]
fn mix(x: u64, salt: u64) -> u64 {
    let mut z = x ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hash-based estimator.
#[derive(Debug, Clone, Copy)]
pub struct HashEstimator {
    /// Row/column sampling fraction (default 0.1).
    pub fraction: f64,
    /// KMV buffer size `k = 1/ε²` (default 1024).
    pub buffer: usize,
    /// Salt for the hash functions.
    pub seed: u64,
}

impl Default for HashEstimator {
    fn default() -> Self {
        HashEstimator {
            fraction: 0.1,
            buffer: 1024,
            seed: 0x4A5B,
        }
    }
}

impl HashEstimator {
    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a HashSynopsis> {
        crate::expect_synopsis!("Hash", Synopsis::Hash, inputs, idx)
    }
}

impl SparsityEstimator for HashEstimator {
    fn cache_key(&self) -> String {
        format!(
            "{}:f={},k={},seed={}",
            self.name(),
            self.fraction,
            self.buffer,
            self.seed
        )
    }

    fn name(&self) -> &'static str {
        "Hash"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Hash(HashSynopsis {
            matrix: Arc::clone(m),
            transpose: Arc::new(m.transpose()),
        }))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        if !matches!(op, OpKind::MatMul) {
            return Err(EstimatorError::unsupported(self.name(), op));
        }
        let a = self.unwrap(inputs, 0)?;
        let b = self.unwrap(inputs, 1)?;
        let (m, _) = a.shape();
        let (_, l) = b.shape();
        let cells = m as f64 * l as f64;
        if cells == 0.0 {
            return Ok(0.0);
        }
        // Thresholds for Bernoulli sampling via index hashing.
        let thresh = (self.fraction * u64::MAX as f64) as u64;
        let (s_row, s_col, s_pair) = (
            self.seed ^ 0x517C_C1B7_2722_0A95,
            self.seed ^ 0x2545_F491_4F6C_DD1D,
            self.seed ^ 0x9E37_79B9_7F4A_7C15,
        );
        // KMV buffer of minimum pair hashes (max-heap of size `buffer`).
        let mut kmv = std::collections::BinaryHeap::with_capacity(self.buffer + 1);
        let mut seen_pairs = std::collections::HashSet::new();
        let n = a.shape().1;
        for t in 0..n {
            let (rows_a, _) = a.transpose.row(t); // column t of A
            let (cols_b, _) = b.matrix.row(t); // row t of B
            if rows_a.is_empty() || cols_b.is_empty() {
                continue;
            }
            let sampled_rows: Vec<u32> = rows_a
                .iter()
                .copied()
                .filter(|&i| mix(i as u64, s_row) <= thresh)
                .collect();
            if sampled_rows.is_empty() {
                continue;
            }
            let sampled_cols: Vec<u32> = cols_b
                .iter()
                .copied()
                .filter(|&j| mix(j as u64, s_col) <= thresh)
                .collect();
            for &i in &sampled_rows {
                for &j in &sampled_cols {
                    let key = i as u64 * l as u64 + j as u64;
                    if !seen_pairs.insert(key) {
                        continue;
                    }
                    let h = mix(key, s_pair);
                    kmv.push(h);
                    if kmv.len() > self.buffer {
                        kmv.pop();
                        // Pairs above the current k-th minimum can never
                        // re-enter; keeping `seen_pairs` bounded is a
                        // space/time trade-off we skip at benchmark scale.
                    }
                }
            }
        }
        let distinct_sampled = if kmv.len() < self.buffer {
            // Buffer never filled: the sampled count is exact.
            kmv.len() as f64
        } else {
            // KMV estimate: (k - 1) / v_(k) with v normalized to (0, 1].
            let vk = *kmv.peek().expect("buffer full") as f64 / u64::MAX as f64;
            if vk <= 0.0 {
                kmv.len() as f64
            } else {
                (self.buffer as f64 - 1.0) / vk
            }
        };
        let est_nnz = distinct_sampled / (self.fraction * self.fraction);
        Ok((est_nnz / cells).clamp(0.0, 1.0))
    }

    fn propagate(&self, op: &OpKind, _inputs: &[&Synopsis]) -> Result<Synopsis> {
        Err(EstimatorError::unsupported(self.name(), op))
    }

    fn supports_chains(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(m: &CsrMatrix) -> Synopsis {
        HashEstimator::default()
            .build(&Arc::new(m.clone()))
            .unwrap()
    }

    #[test]
    fn full_fraction_small_output_is_exact() {
        // fraction = 1 keeps everything; output below the buffer size is
        // counted exactly.
        let mut r = rng(1);
        let a = gen::rand_uniform(&mut r, 40, 30, 0.05);
        let b = gen::rand_uniform(&mut r, 30, 40, 0.05);
        let e = HashEstimator {
            fraction: 1.0,
            buffer: 1 << 20,
            seed: 3,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        assert!((est - truth).abs() < 1e-12, "est {est} truth {truth}");
    }

    #[test]
    fn sampled_estimate_is_reasonable() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 300, 200, 0.02);
        let b = gen::rand_uniform(&mut r, 200, 300, 0.03);
        let e = HashEstimator {
            fraction: 0.5,
            buffer: 4096,
            seed: 7,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)]).unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.5, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn other_ops_unsupported() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 10, 10, 0.2);
        let e = HashEstimator::default();
        assert!(e.estimate(&OpKind::EwMul, &[&syn(&a), &syn(&a)]).is_err());
        assert!(e.propagate(&OpKind::MatMul, &[&syn(&a), &syn(&a)]).is_err());
        assert!(!e.supports_chains());
    }

    #[test]
    fn empty_product_estimates_zero() {
        let a = CsrMatrix::zeros(10, 10);
        let e = HashEstimator {
            fraction: 1.0,
            buffer: 64,
            seed: 1,
        };
        let est = e.estimate(&OpKind::MatMul, &[&syn(&a), &syn(&a)]).unwrap();
        assert_eq!(est, 0.0);
    }
}
