//! [`InstrumentedEstimator`]: a transparent observability decorator for any
//! [`SparsityEstimator`].
//!
//! Wrapping an estimator adds a span per `build`/`estimate`/`propagate` call
//! (carrying the op or estimator label, non-zeros in/out, and synopsis
//! bytes) and feeds the per-phase latency histograms of the recorder's
//! metrics registry. Results are forwarded untouched, so estimates are
//! bit-identical with and without the wrapper; with a disabled recorder the
//! wrapper reduces to plain delegation (no clock reads, no allocation).

use std::sync::Arc;

use mnc_matrix::CsrMatrix;
use mnc_obs::{Counter, Histogram, Recorder};

use crate::{OpKind, Result, SparsityEstimator, Synopsis};

/// Decorates an inner estimator with spans and latency metrics.
pub struct InstrumentedEstimator<E> {
    inner: E,
    rec: Recorder,
    build_ns: Histogram,
    estimate_ns: Histogram,
    propagate_ns: Histogram,
    unsupported: Counter,
}

impl<E: SparsityEstimator> InstrumentedEstimator<E> {
    /// Wraps `inner`, pre-registering the latency histograms so hot-path
    /// calls never touch the registry mutex.
    pub fn new(inner: E, rec: Recorder) -> Self {
        InstrumentedEstimator {
            build_ns: rec.histogram("estimator.build_ns"),
            estimate_ns: rec.histogram("estimator.estimate_ns"),
            propagate_ns: rec.histogram("estimator.propagate_ns"),
            unsupported: rec.counter("estimator.unsupported"),
            inner,
            rec,
        }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps back into the inner estimator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: SparsityEstimator> SparsityEstimator for InstrumentedEstimator<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        if !self.rec.is_enabled() {
            return self.inner.build(m);
        }
        let mut span = self
            .rec
            .span("build")
            .op(self.inner.name())
            .nnz_in(m.nnz() as u64);
        let start = std::time::Instant::now();
        let out = self.inner.build(m);
        self.build_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        if let Ok(syn) = &out {
            span.set_nnz_out(syn.nnz());
            span.set_bytes(syn.size_bytes());
        }
        out
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        if !self.rec.is_enabled() {
            return self.inner.estimate(op, inputs);
        }
        let mut span = self
            .rec
            .span("estimate")
            .op(op.name())
            .nnz_in(inputs.iter().map(|s| s.nnz()).sum());
        let start = std::time::Instant::now();
        let out = self.inner.estimate(op, inputs);
        self.estimate_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match &out {
            Ok(s) => {
                let shapes: Vec<(usize, usize)> = inputs.iter().map(|i| i.shape()).collect();
                if let Ok((rows, cols)) = op.output_shape(&shapes) {
                    span.set_nnz_out((s * rows as f64 * cols as f64).round() as u64);
                }
            }
            Err(crate::EstimatorError::Unsupported { .. }) => self.unsupported.incr(),
            Err(_) => {}
        }
        out
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        if !self.rec.is_enabled() {
            return self.inner.propagate(op, inputs);
        }
        let mut span = self
            .rec
            .span("propagate")
            .op(op.name())
            .nnz_in(inputs.iter().map(|s| s.nnz()).sum());
        let start = std::time::Instant::now();
        let out = self.inner.propagate(op, inputs);
        self.propagate_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match &out {
            Ok(syn) => {
                span.set_nnz_out(syn.nnz());
                span.set_bytes(syn.size_bytes());
            }
            Err(crate::EstimatorError::Unsupported { .. }) => self.unsupported.incr(),
            Err(_) => {}
        }
        out
    }

    fn supports_chains(&self) -> bool {
        self.inner.supports_chains()
    }

    fn order_invariant(&self) -> bool {
        self.inner.order_invariant()
    }

    // `as_sync` keeps its `None` default: the blanket impl cannot promise
    // `Sync` for an arbitrary `E`, so instrumented estimators always take
    // the sequential walk (instrumentation targets measurement runs, where
    // a fixed schedule is a feature anyway).

    fn cache_key(&self) -> String {
        // Same key as the wrapped estimator: instrumentation never changes a
        // synopsis, so cached entries stay valid across wrapping.
        self.inner.cache_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaAcEstimator, MncEstimator};
    use mnc_matrix::CsrMatrix;

    fn sample() -> Arc<CsrMatrix> {
        Arc::new(
            CsrMatrix::from_triples(4, 4, vec![(0, 0, 1.0), (1, 2, 2.0), (3, 3, 3.0)]).unwrap(),
        )
    }

    #[test]
    fn results_are_identical_with_and_without_instrumentation() {
        let m = sample();
        let plain = MncEstimator::new();
        let wrapped = InstrumentedEstimator::new(MncEstimator::new(), Recorder::enabled());
        let ps = plain.build(&m).unwrap();
        let ws = wrapped.build(&m).unwrap();
        let pe = plain.estimate(&OpKind::MatMul, &[&ps, &ps]).unwrap();
        let we = wrapped.estimate(&OpKind::MatMul, &[&ws, &ws]).unwrap();
        assert_eq!(pe.to_bits(), we.to_bits());
        assert_eq!(wrapped.name(), plain.name());
        assert_eq!(wrapped.cache_key(), plain.cache_key());
        assert_eq!(wrapped.supports_chains(), plain.supports_chains());
    }

    #[test]
    fn spans_and_histograms_capture_each_phase() {
        let rec = Recorder::enabled();
        let est = InstrumentedEstimator::new(MncEstimator::new(), rec.clone());
        let m = sample();
        let syn = est.build(&m).unwrap();
        est.estimate(&OpKind::MatMul, &[&syn, &syn]).unwrap();
        let out = est.propagate(&OpKind::Transpose, &[&syn]).unwrap();

        let spans = rec.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["build", "estimate", "propagate"]);
        assert_eq!(spans[0].op.as_deref(), Some("MNC"));
        assert_eq!(spans[0].nnz_in, Some(3));
        assert_eq!(spans[0].synopsis_bytes, Some(syn.size_bytes()));
        assert_eq!(spans[1].op.as_deref(), Some("matmul"));
        assert_eq!(spans[2].nnz_out, Some(out.nnz()));

        let metrics = rec.registry().unwrap().snapshot();
        assert_eq!(metrics.histograms["estimator.build_ns"].count(), 1);
        assert_eq!(metrics.histograms["estimator.estimate_ns"].count(), 1);
        assert_eq!(metrics.histograms["estimator.propagate_ns"].count(), 1);
    }

    #[test]
    fn unsupported_operations_are_counted_not_hidden() {
        let rec = Recorder::enabled();
        // MetaAC does not support Eq0 (complement needs exact structure).
        let est = InstrumentedEstimator::new(MetaAcEstimator, rec.clone());
        let syn = est.build(&sample()).unwrap();
        let r = est.estimate(&OpKind::Eq0, &[&syn]);
        if r.is_err() {
            let snap = rec.registry().unwrap().snapshot();
            assert_eq!(snap.counters["estimator.unsupported"], 1);
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        let est = InstrumentedEstimator::new(MncEstimator::new(), rec.clone());
        let syn = est.build(&sample()).unwrap();
        est.estimate(&OpKind::Transpose, &[&syn]).unwrap();
        assert!(rec.spans().is_empty());
        assert!(rec.registry().is_none());
    }
}
