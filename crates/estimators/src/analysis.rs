//! Analytical comparison of the estimators: Table 1 (space/time/chain/bias)
//! and the synopsis-size formulas behind Figure 9.

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Complexity {
    /// Estimator name as used in the paper.
    pub name: &'static str,
    /// Space complexity (synopsis size).
    pub space: &'static str,
    /// Time complexity (construction + estimation for one product).
    pub time: &'static str,
    /// Supports matrix product chains (the `®` column).
    pub chains: bool,
    /// Bias, if any: the direction the estimate is guaranteed to err.
    pub bias: Option<&'static str>,
}

/// The paper's Table 1, verbatim.
pub const COMPLEXITY_TABLE: &[Complexity] = &[
    Complexity {
        name: "MetaAC (E_ac)",
        space: "O(1)",
        time: "O(1)",
        chains: true,
        bias: None,
    },
    Complexity {
        name: "MetaWC (E_wc)",
        space: "O(1)",
        time: "O(1)",
        chains: true,
        bias: Some("over-estimation (upper bound)"),
    },
    Complexity {
        name: "Bitset (E_bmm)",
        space: "O(mn + nl + ml)",
        time: "O(mnl)",
        chains: true,
        bias: None,
    },
    Complexity {
        name: "DMap (E_dm)",
        space: "O((mn + nl + ml) / b^2)",
        time: "O(mnl / b^3)",
        chains: true,
        bias: None,
    },
    Complexity {
        name: "Sample (E_smpl)",
        space: "O(|S|)",
        time: "O(|S| (m + l))",
        chains: false,
        bias: Some("under-estimation (lower bound)"),
    },
    Complexity {
        name: "LGraph (E_gph)",
        space: "O(r d + nnz(A, B))",
        time: "O(r (d + nnz(A, B)))",
        chains: true,
        bias: None,
    },
    Complexity {
        name: "MNC (E_mnc)",
        space: "O(d)",
        time: "O(d + nnz(A, B))",
        chains: true,
        bias: None,
    },
];

/// Analytical synopsis sizes in bytes for one `m x n` matrix with `nnz`
/// non-zeros (Figure 9). The constants follow the paper's accounting:
/// bitset 1 bit/cell, density map 8 B per `b x b` block, MNC 4 B per
/// dimension entry for up to four count vectors, layered graph `r` 4-B
/// entries per node plus 8 B per edge.
#[derive(Debug, Clone, Copy)]
pub struct SynopsisSizes {
    /// Bitset: `m·n / 8`.
    pub bitset: f64,
    /// Density map: `8 · ceil(m/b) · ceil(n/b)`.
    pub density_map: f64,
    /// MNC: `4 · 2 · (m + n)` (base + extended count vectors).
    pub mnc: f64,
    /// Layered graph: `4r · (m + n) + 8 · nnz`.
    pub layered_graph: f64,
}

/// Computes the analytical sizes for the Figure 9 sweeps.
pub fn synopsis_sizes(m: f64, n: f64, nnz: f64, block: f64, rounds: f64) -> SynopsisSizes {
    SynopsisSizes {
        bitset: m * n / 8.0,
        density_map: 8.0 * (m / block).ceil() * (n / block).ceil(),
        mnc: 4.0 * 2.0 * (m + n),
        layered_graph: 4.0 * rounds * (m + n) + 8.0 * nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_seven_estimators() {
        assert_eq!(COMPLEXITY_TABLE.len(), 7);
        let names: Vec<_> = COMPLEXITY_TABLE.iter().map(|c| c.name).collect();
        assert!(names.iter().any(|n| n.contains("MNC")));
        assert!(names.iter().any(|n| n.contains("LGraph")));
    }

    #[test]
    fn only_sampling_lacks_chain_support() {
        let no_chain: Vec<_> = COMPLEXITY_TABLE
            .iter()
            .filter(|c| !c.chains)
            .map(|c| c.name)
            .collect();
        assert_eq!(no_chain, vec!["Sample (E_smpl)"]);
    }

    #[test]
    fn figure9_example_magnitudes() {
        // Paper, Section 6.2: m = n = 1M -> MNC 16 MB of count vectors
        // (2 vectors x 2M entries x 4 B; the paper doubles this for the
        // extended vectors to 32 MB), bitset 125 GB, density map 122 KB
        // ... with b = 256 the map is 8·(1M/256)^2 = 122 MB.
        let s = synopsis_sizes(1e6, 1e6, 1e6, 256.0, 32.0);
        assert!((s.bitset - 125e9).abs() / 125e9 < 0.01);
        assert!((s.mnc - 16e6).abs() / 16e6 < 0.01);
        assert!((s.density_map - 122e6).abs() / 122e6 < 0.01);
        // Layered graph at low sparsity is dominated by node vectors.
        assert!(s.layered_graph > 4.0 * 32.0 * 2e6);
    }

    #[test]
    fn layered_graph_grows_with_nnz() {
        let sparse = synopsis_sizes(1e6, 1e6, 1e3, 256.0, 32.0);
        let dense = synopsis_sizes(1e6, 1e6, 1e12, 256.0, 32.0);
        assert!(dense.layered_graph > sparse.layered_graph);
        // At full density the layered graph even exceeds the bitset
        // (Figure 9(a), right edge).
        assert!(dense.layered_graph > dense.bitset);
    }
}
