//! Dynamic density map with recursive quad-tree partitioning — the natural
//! extension sketched in Section 2.2 ("Dynamic Block Sizes"): fixed block
//! sizes are problematic for ultra-sparse matrices because a moderate
//! default can render the map larger than the input; adapting local block
//! sizes to the non-zero structure (as in the AT-Matrix) fixes the size
//! but, as the paper warns, "the non-aligned blocks in dmA and dmB would
//! complicate the estimator".
//!
//! This implementation resolves the alignment problem by *resampling*: the
//! quad-tree supports `O(log)` expected-count rectangle queries, and for
//! products both operands are resampled onto a small aligned virtual grid
//! on which the standard Eq. 4 pseudo-product runs. The synopsis size is
//! `O(min(nnz, cells) / leaf_capacity)` — bounded by the input size, unlike
//! the fixed-block map.

use std::sync::{Arc, OnceLock};

use mnc_matrix::CsrMatrix;

use crate::density_map::DmSynopsis;
use crate::{EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// A quad-tree node covering the half-open cell region
/// `[r0, r1) x [c0, c1)`.
#[derive(Debug, Clone)]
enum Node {
    /// Uniform-density leaf.
    Leaf {
        /// Non-zeros inside the region.
        nnz: u64,
    },
    /// Four-way split at the region midpoints.
    Split { children: Box<[QuadRegion; 4]> },
}

#[derive(Debug, Clone)]
struct QuadRegion {
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    node: Node,
}

impl QuadRegion {
    fn cells(&self) -> f64 {
        (self.r1 - self.r0) as f64 * (self.c1 - self.c0) as f64
    }

    fn nnz(&self) -> u64 {
        match &self.node {
            Node::Leaf { nnz } => *nnz,
            Node::Split { children } => children.iter().map(|c| c.nnz()).sum(),
        }
    }

    fn build(
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        points: &mut Vec<(u32, u32)>,
        leaf_capacity: usize,
        min_dim: usize,
    ) -> QuadRegion {
        let rows = r1 - r0;
        let cols = c1 - c0;
        if points.len() <= leaf_capacity || (rows <= min_dim && cols <= min_dim) {
            return QuadRegion {
                r0,
                r1,
                c0,
                c1,
                node: Node::Leaf {
                    nnz: points.len() as u64,
                },
            };
        }
        let rm = r0 + (rows / 2).max(1);
        let cm = c0 + (cols / 2).max(1);
        let mut quads: [Vec<(u32, u32)>; 4] = Default::default();
        for &(r, c) in points.iter() {
            let q = usize::from(r as usize >= rm) * 2 + usize::from(c as usize >= cm);
            quads[q].push((r, c));
        }
        points.clear();
        points.shrink_to_fit();
        let bounds = [
            (r0, rm, c0, cm),
            (r0, rm, cm, c1),
            (rm, r1, c0, cm),
            (rm, r1, cm, c1),
        ];
        let children: Vec<QuadRegion> = quads
            .into_iter()
            .zip(bounds)
            .map(|(mut pts, (a, b, c, d))| {
                QuadRegion::build(a, b, c, d, &mut pts, leaf_capacity, min_dim)
            })
            .collect();
        let children: Box<[QuadRegion; 4]> =
            children.try_into().map(Box::new).expect("four quadrants");
        QuadRegion {
            r0,
            r1,
            c0,
            c1,
            node: Node::Split { children },
        }
    }

    /// Expected non-zeros inside `[qr0, qr1) x [qc0, qc1)`, assuming
    /// uniformity within leaves.
    fn expected_in_rect(&self, qr0: usize, qr1: usize, qc0: usize, qc1: usize) -> f64 {
        let or0 = qr0.max(self.r0);
        let or1 = qr1.min(self.r1);
        let oc0 = qc0.max(self.c0);
        let oc1 = qc1.min(self.c1);
        if or0 >= or1 || oc0 >= oc1 {
            return 0.0;
        }
        match &self.node {
            Node::Leaf { nnz } => {
                let overlap = (or1 - or0) as f64 * (oc1 - oc0) as f64;
                *nnz as f64 * overlap / self.cells()
            }
            Node::Split { children } => children
                .iter()
                .map(|ch| ch.expected_in_rect(qr0, qr1, qc0, qc1))
                .sum(),
        }
    }

    fn leaf_count(&self) -> usize {
        match &self.node {
            Node::Leaf { .. } => 1,
            Node::Split { children } => children.iter().map(|c| c.leaf_count()).sum(),
        }
    }

    fn region_count(&self) -> usize {
        match &self.node {
            Node::Leaf { .. } => 1,
            Node::Split { children } => {
                1 + children.iter().map(|c| c.region_count()).sum::<usize>()
            }
        }
    }
}

/// Quad-tree density synopsis.
#[derive(Debug, Clone)]
pub struct QuadTreeSynopsis {
    root: QuadRegion,
    nrows: usize,
    ncols: usize,
    /// Build-time-primed aligned-grid resample, keyed by the `max_grid` it
    /// was computed for. Estimate calls on the product path would otherwise
    /// repeat the full rectangle-query scan per call; the tree is immutable
    /// after build, so the cache never goes stale (and `Clone` keeps it).
    resampled: OnceLock<(usize, DmSynopsis)>,
}

impl QuadTreeSynopsis {
    /// Builds a quad-tree over the non-zero pattern; regions split until
    /// they hold at most `leaf_capacity` non-zeros (or reach 1x1).
    pub fn from_matrix(m: &CsrMatrix, leaf_capacity: usize) -> Self {
        let mut points: Vec<(u32, u32)> = m
            .iter_triples()
            .map(|(i, j, _)| (i as u32, j as u32))
            .collect();
        let root = QuadRegion::build(
            0,
            m.nrows().max(1),
            0,
            m.ncols().max(1),
            &mut points,
            leaf_capacity.max(1),
            1,
        );
        QuadTreeSynopsis {
            root,
            nrows: m.nrows(),
            ncols: m.ncols(),
            resampled: OnceLock::new(),
        }
    }

    /// Shape of the described matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Exact total non-zeros (counts are preserved on build).
    pub fn nnz(&self) -> u64 {
        self.root.nnz()
    }

    /// Sparsity implied by the synopsis.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            (self.nnz() as f64 / cells).clamp(0.0, 1.0)
        }
    }

    /// Number of leaves (the adaptive resolution).
    pub fn leaves(&self) -> usize {
        self.root.leaf_count()
    }

    /// Measured synopsis size: ~48 B per region node.
    pub fn size_bytes(&self) -> u64 {
        (self.leaves() * std::mem::size_of::<QuadRegion>()) as u64
    }

    /// Measured heap bytes: every region except the inline root lives in a
    /// boxed 4-child array, so the heap holds `region_count - 1` regions.
    /// The primed resample cache is a derived acceleration structure, not
    /// part of the paper's synopsis, and is excluded (as are the density
    /// map's support marginals).
    pub fn heap_bytes(&self) -> u64 {
        ((self.root.region_count() - 1) * std::mem::size_of::<QuadRegion>()) as u64
    }

    /// Expected non-zeros inside a cell rectangle.
    pub fn expected_nnz_in_rect(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        self.root.expected_in_rect(r0, r1, c0, c1)
    }

    /// Resamples the quad-tree onto an aligned uniform grid with at most
    /// `max_grid` blocks per dimension — the alignment step that makes the
    /// Eq. 4 pseudo-product applicable to non-aligned trees. Served from the
    /// build-time cache when it was primed for the same `max_grid` (the
    /// cached map is the same computation, so the answer is bit-identical).
    pub fn resample(&self, max_grid: usize) -> DmSynopsis {
        if let Some((g, dm)) = self.resampled.get() {
            if *g == max_grid {
                return dm.clone();
            }
        }
        self.resample_uncached(max_grid)
    }

    /// Primes the resample cache for `max_grid`. Called by the estimator at
    /// build time so the per-estimate product path skips the rectangle-query
    /// scan; a no-op if the cache is already set.
    pub fn prime_resample(&self, max_grid: usize) {
        self.resampled
            .get_or_init(|| (max_grid, self.resample_uncached(max_grid)));
    }

    fn resample_uncached(&self, max_grid: usize) -> DmSynopsis {
        let block_rows = self.nrows.div_ceil(max_grid).max(1);
        let block_cols = self.ncols.div_ceil(max_grid).max(1);
        let block = block_rows.max(block_cols);
        let mut dm = DmSynopsis::zeros(self.nrows, self.ncols, block);
        let grid_rows = self.nrows.div_ceil(block).max(1);
        let grid_cols = self.ncols.div_ceil(block).max(1);
        for bi in 0..grid_rows {
            let (r0, r1) = (bi * block, ((bi + 1) * block).min(self.nrows));
            for bj in 0..grid_cols {
                let (c0, c1) = (bj * block, ((bj + 1) * block).min(self.ncols));
                let nnz = self.expected_nnz_in_rect(r0, r1, c0, c1);
                let cells = (r1 - r0) as f64 * (c1 - c0) as f64;
                if cells > 0.0 {
                    dm.set_density(bi, bj, (nnz / cells).clamp(0.0, 1.0));
                }
            }
        }
        dm
    }
}

/// The dynamic density map estimator.
#[derive(Debug, Clone, Copy)]
pub struct DynamicDensityMapEstimator {
    /// Maximum non-zeros per quad-tree leaf (default 256).
    pub leaf_capacity: usize,
    /// Resampling resolution for products (default 64 blocks/dimension).
    pub max_grid: usize,
    pub(crate) threads: usize,
}

impl Default for DynamicDensityMapEstimator {
    fn default() -> Self {
        DynamicDensityMapEstimator {
            leaf_capacity: 256,
            max_grid: 64,
            threads: 1,
        }
    }
}

impl DynamicDensityMapEstimator {
    /// Runs the delegated fixed-block pseudo-product over `threads` workers
    /// (bit-identical to single-threaded, see
    /// [`crate::DensityMapEstimator::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a QuadTreeSynopsis> {
        crate::expect_synopsis!("DynDMap", Synopsis::QuadTree, inputs, idx)
    }
}

impl SparsityEstimator for DynamicDensityMapEstimator {
    fn cache_key(&self) -> String {
        format!(
            "{}:leaf={},grid={}",
            self.name(),
            self.leaf_capacity,
            self.max_grid
        )
    }

    fn name(&self) -> &'static str {
        "DynDMap"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        let qt = QuadTreeSynopsis::from_matrix(m, self.leaf_capacity);
        // Prime the aligned-grid cache now so the per-estimate product path
        // reuses it instead of re-running the rectangle-query scan.
        qt.prime_resample(self.max_grid);
        Ok(Synopsis::QuadTree(qt))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        match op {
            OpKind::MatMul => {
                // Resample to aligned grids, then run the fixed-block logic.
                let a = self.unwrap(inputs, 0)?.resample(self.max_grid);
                let b = self.unwrap(inputs, 1)?.resample(self.max_grid);
                // Align the block sizes (resample may pick different ones).
                let block = a.block.max(b.block);
                let fixed =
                    crate::DensityMapEstimator::with_block(block).with_threads(self.threads);
                let (ra, rb) = (
                    Synopsis::DensityMap(regrid(&a, block)),
                    Synopsis::DensityMap(regrid(&b, block)),
                );
                fixed.estimate(op, &[&ra, &rb])
            }
            OpKind::Transpose | OpKind::Reshape { .. } | OpKind::Neq0 => {
                Ok(self.unwrap(inputs, 0)?.sparsity())
            }
            OpKind::Eq0 => Ok(1.0 - self.unwrap(inputs, 0)?.sparsity()),
            OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
                let a = self.unwrap(inputs, 0)?;
                let b = self.unwrap(inputs, 1)?;
                let block = (a.shape().0.div_ceil(self.max_grid))
                    .max(a.shape().1.div_ceil(self.max_grid))
                    .max(1);
                let fixed =
                    crate::DensityMapEstimator::with_block(block).with_threads(self.threads);
                let (ra, rb) = (
                    Synopsis::DensityMap(regrid(&a.resample(self.max_grid), block)),
                    Synopsis::DensityMap(regrid(&b.resample(self.max_grid), block)),
                );
                fixed.estimate(op, &[&ra, &rb])
            }
            OpKind::DiagV2M => {
                let a = self.unwrap(inputs, 0)?;
                let m = a.shape().0 as f64;
                Ok(if m == 0.0 {
                    0.0
                } else {
                    a.nnz() as f64 / (m * m)
                })
            }
            OpKind::DiagM2V => {
                // Sum the expected density of the 1x1 diagonal cells via
                // rectangle queries over the quad-tree.
                let a = self.unwrap(inputs, 0)?;
                let (m, _) = a.shape();
                if m == 0 {
                    return Ok(0.0);
                }
                let expected: f64 = (0..m)
                    .map(|i| a.expected_nnz_in_rect(i, i + 1, i, i + 1))
                    .sum();
                Ok((expected / m as f64).clamp(0.0, 1.0))
            }
            OpKind::Rbind => {
                let a = self.unwrap(inputs, 0)?;
                let b = self.unwrap(inputs, 1)?;
                let cells = (a.shape().0 + b.shape().0) as f64 * a.shape().1 as f64;
                Ok(((a.nnz() + b.nnz()) as f64 / cells).clamp(0.0, 1.0))
            }
            OpKind::Cbind => {
                let a = self.unwrap(inputs, 0)?;
                let b = self.unwrap(inputs, 1)?;
                let cells = a.shape().0 as f64 * (a.shape().1 + b.shape().1) as f64;
                Ok(((a.nnz() + b.nnz()) as f64 / cells).clamp(0.0, 1.0))
            }
        }
    }

    fn propagate(&self, op: &OpKind, _inputs: &[&Synopsis]) -> Result<Synopsis> {
        // Propagating a quad-tree through an operation would require
        // re-adapting the partitioning to an *estimated* structure; this
        // extension estimates single operations only (like the paper's
        // sampling baselines).
        Err(EstimatorError::unsupported(self.name(), op))
    }

    fn supports_chains(&self) -> bool {
        false
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }
}

/// Rebuilds a density map at exactly `block` (resample may have chosen a
/// smaller block for the narrower operand).
fn regrid(dm: &DmSynopsis, block: usize) -> DmSynopsis {
    if dm.block == block {
        return dm.clone();
    }
    let mut out = DmSynopsis::zeros(dm.nrows, dm.ncols, block);
    let grid_rows = dm.nrows.div_ceil(block).max(1);
    let grid_cols = dm.ncols.div_ceil(block).max(1);
    for bi in 0..grid_rows {
        let (r0, r1) = (bi * block, ((bi + 1) * block).min(dm.nrows));
        for bj in 0..grid_cols {
            let (c0, c1) = (bj * block, ((bj + 1) * block).min(dm.ncols));
            let nnz = dm.expected_nnz_in_rect(r0, r1, c0, c1);
            let cells = (r1 - r0) as f64 * (c1 - c0) as f64;
            if cells > 0.0 {
                out.set_density(bi, bj, (nnz / cells).clamp(0.0, 1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(m: &CsrMatrix, cap: usize) -> Synopsis {
        Synopsis::QuadTree(QuadTreeSynopsis::from_matrix(m, cap))
    }

    #[test]
    fn build_preserves_nnz_exactly() {
        let mut r = rng(1);
        let m = gen::rand_uniform(&mut r, 100, 80, 0.05);
        let qt = QuadTreeSynopsis::from_matrix(&m, 16);
        assert_eq!(qt.nnz(), m.nnz() as u64);
        assert!((qt.sparsity() - m.sparsity()).abs() < 1e-12);
        assert!(qt.leaves() >= m.nnz() / 16);
    }

    #[test]
    fn rect_queries_sum_to_total() {
        let mut r = rng(2);
        let m = gen::rand_uniform(&mut r, 50, 60, 0.1);
        let qt = QuadTreeSynopsis::from_matrix(&m, 8);
        let whole = qt.expected_nnz_in_rect(0, 50, 0, 60);
        assert!((whole - m.nnz() as f64).abs() < 1e-9);
        // Quadrant split sums to total.
        let q: f64 = [
            (0, 25, 0, 30),
            (0, 25, 30, 60),
            (25, 50, 0, 30),
            (25, 50, 30, 60),
        ]
        .iter()
        .map(|&(a, b, c, d)| qt.expected_nnz_in_rect(a, b, c, d))
        .sum();
        assert!((q - m.nnz() as f64).abs() < 1e-9);
    }

    #[test]
    fn adaptive_size_is_bounded_by_nnz() {
        // Ultra-sparse large matrix: a fixed 256-block map would hold
        // (m/256)·(n/256) doubles; the quad-tree stays near nnz/leaf_cap.
        let mut r = rng(3);
        let m = gen::rand_uniform(&mut r, 20_000, 20_000, 2.5e-6); // 1000 nnz
        let qt = QuadTreeSynopsis::from_matrix(&m, 64);
        // Input size ≈ 12 B per nnz = 12 KB; synopsis must be comparable.
        assert!(
            qt.size_bytes() < 64 * 1024,
            "quad-tree took {} B",
            qt.size_bytes()
        );
    }

    #[test]
    fn product_estimate_close_on_uniform_inputs() {
        let mut r = rng(4);
        let a = gen::rand_uniform(&mut r, 150, 120, 0.03);
        let b = gen::rand_uniform(&mut r, 120, 140, 0.04);
        let e = DynamicDensityMapEstimator::default();
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&a, 32), &syn(&b, 32)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.5, "relative error {rel} (est {est} truth {truth})");
    }

    #[test]
    fn captures_local_structure_better_than_one_coarse_block() {
        // Column-vector pattern (the §2.2 anomaly): the adaptive tree
        // separates the dense column area from the empty rest.
        let a = CsrMatrix::from_triples(200, 100, (0..50).map(|i| (i, 0usize, 1.0))).unwrap();
        let mut r = rng(5);
        let b = gen::rand_dense(&mut r, 100, 100);
        let dyn_e = DynamicDensityMapEstimator {
            leaf_capacity: 8,
            max_grid: 128,
            ..Default::default()
        };
        let est = dyn_e
            .estimate(&OpKind::MatMul, &[&syn(&a, 8), &syn(&b, 8)])
            .unwrap();
        let truth = 5_000.0 / 20_000.0;
        let rel_dyn = est.max(truth) / est.min(truth).max(1e-12);
        // The fixed map at its *finest* paper block size (b = 50) estimates
        // 3,179/5,000 — a relative error of 1.573. The adaptive tree, whose
        // fine blocks cover only the occupied strip, must not be worse.
        assert!(rel_dyn < 1.573, "dynamic map error {rel_dyn}");
    }

    #[test]
    fn elementwise_and_reorg() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 60, 60, 0.2);
        let b = gen::rand_uniform(&mut r, 60, 60, 0.3);
        let e = DynamicDensityMapEstimator::default();
        let add = e
            .estimate(&OpKind::EwAdd, &[&syn(&a, 16), &syn(&b, 16)])
            .unwrap();
        let truth = ops::ew_add(&a, &b).unwrap().sparsity();
        assert!((add - truth).abs() < 0.06, "add {add} truth {truth}");
        let t = e.estimate(&OpKind::Transpose, &[&syn(&a, 16)]).unwrap();
        assert!((t - a.sparsity()).abs() < 1e-12);
    }

    /// The build-primed resample cache and the threaded product path must
    /// not move the estimate by a single bit relative to the uncached,
    /// single-threaded computation.
    #[test]
    fn primed_cache_and_threads_are_bit_identical() {
        let mut r = rng(8);
        let a = gen::rand_uniform(&mut r, 150, 120, 0.03);
        let b = gen::rand_uniform(&mut r, 120, 140, 0.04);
        let e = DynamicDensityMapEstimator::default();
        let (qa, qb) = (
            QuadTreeSynopsis::from_matrix(&a, e.leaf_capacity),
            QuadTreeSynopsis::from_matrix(&b, e.leaf_capacity),
        );
        // Cached resample equals the direct scan bit for bit.
        qa.prime_resample(e.max_grid);
        let cached = qa.resample(e.max_grid);
        let fresh = qa.resample_uncached(e.max_grid);
        assert_eq!(cached.block, fresh.block);
        for (c, f) in cached.densities().iter().zip(fresh.densities()) {
            assert_eq!(c.to_bits(), f.to_bits());
        }
        // Estimates agree across primed/unprimed synopses and thread counts.
        let built_a = e.build(&Arc::new(a)).unwrap(); // primed at build
        let unprimed = Synopsis::QuadTree(qb.clone());
        let reference = e
            .estimate(&OpKind::MatMul, &[&Synopsis::QuadTree(qa), &unprimed])
            .unwrap();
        for threads in [1usize, 2, 8] {
            let et = e.with_threads(threads);
            let got = et
                .estimate(&OpKind::MatMul, &[&built_a, &unprimed])
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chains_unsupported() {
        let mut r = rng(7);
        let a = gen::rand_uniform(&mut r, 10, 10, 0.2);
        let e = DynamicDensityMapEstimator::default();
        assert!(e
            .propagate(&OpKind::MatMul, &[&syn(&a, 8), &syn(&a, 8)])
            .is_err());
        assert!(!e.supports_chains());
    }
}
