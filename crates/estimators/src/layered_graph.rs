//! Cohen's layered-graph estimator `E_gph` (Section 2.4, Eq. 6).
//!
//! The layered graph of a chain `(M1, ..., Mk)` has one level per matrix
//! boundary; edges are the non-zero positions. Leaf nodes (rows of `M1`)
//! receive *r-vectors* of exponential(1) variates; inner nodes take the
//! element-wise minimum of their inputs. The number of leaves reaching a
//! root (an output column) — i.e. the non-zero count of that column — is
//! estimated as `(r - 1) / Σ r_v` (Eq. 6).
//!
//! In synopsis form: a leaf synopsis keeps the matrix pattern plus the
//! r-vectors of its *columns* (computed from fresh leaf vectors); a product
//! propagates the left operand's column vectors through the right operand's
//! pattern. Estimation therefore works for arbitrary-length, left-deep
//! product chains — and for nothing else, matching the paper (element-wise
//! operations and reorganizations are `✗` for `E_gph`).

use std::sync::Arc;

use mnc_core::SplitMix64;
use mnc_matrix::CsrMatrix;

use crate::{EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// Default r-vector length ("number of rounds", paper default 32).
pub const DEFAULT_ROUNDS: usize = 32;

/// Layered-graph synopsis: per-column r-vectors and (for leaves) the matrix
/// pattern used when this synopsis is the right operand of a product.
#[derive(Debug, Clone)]
pub struct LgSynopsis {
    nrows: usize,
    ncols: usize,
    /// `ncols` r-vectors of length `rounds`; `f32` as in compact
    /// implementations (4 B per entry, Figure 9 accounting).
    col_rvecs: Vec<f32>,
    rounds: usize,
    /// Leaf pattern; `None` for propagated intermediates.
    pattern: Option<Arc<CsrMatrix>>,
    /// Known/estimated non-zero count of the described matrix.
    nnz_est: f64,
}

impl LgSynopsis {
    /// Shape of the described matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Sparsity implied by the synopsis.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            (self.nnz_est / cells).clamp(0.0, 1.0)
        }
    }

    /// Measured synopsis size: r-vectors plus (for leaves) the retained
    /// pattern edges.
    pub fn size_bytes(&self) -> u64 {
        let rvec_bytes = (self.col_rvecs.len() * 4) as u64;
        let edges = self
            .pattern
            .as_ref()
            .map(|p| (p.nnz() * (4 + 8)) as u64)
            .unwrap_or(0);
        rvec_bytes + edges
    }

    /// Measured heap bytes retained: r-vector buffer (capacity-based) plus
    /// the full leaf pattern when held (shared `Arc` payloads count for
    /// every holder).
    pub fn heap_bytes(&self) -> u64 {
        let rvec_bytes = (self.col_rvecs.capacity() * 4) as u64;
        let pattern = self.pattern.as_ref().map_or(0, |p| {
            std::mem::size_of::<CsrMatrix>() as u64 + p.heap_bytes()
        });
        rvec_bytes + pattern
    }

    fn rvec(&self, j: usize) -> &[f32] {
        &self.col_rvecs[j * self.rounds..(j + 1) * self.rounds]
    }

    /// Cohen's count estimate for column `j`: `(r - 1) / Σ r_v`, clamped to
    /// the leaf count; 0 for unreachable columns.
    fn col_count_estimate(&self, j: usize, leaf_count: f64) -> f64 {
        let rv = self.rvec(j);
        let mut sum = 0.0f64;
        for &v in rv {
            if v == f32::INFINITY {
                return 0.0; // unreachable column
            }
            sum += v as f64;
        }
        if sum <= 0.0 {
            return leaf_count;
        }
        (((self.rounds - 1) as f64) / sum).min(leaf_count)
    }
}

/// The layered-graph estimator.
#[derive(Debug, Clone, Copy)]
pub struct LayeredGraphEstimator {
    /// r-vector length (number of rounds); paper default 32.
    pub rounds: usize,
    /// Seed for the exponential leaf variates.
    pub seed: u64,
}

impl Default for LayeredGraphEstimator {
    fn default() -> Self {
        LayeredGraphEstimator {
            rounds: DEFAULT_ROUNDS,
            seed: 0x16A9,
        }
    }
}

impl LayeredGraphEstimator {
    /// Estimator with an explicit number of rounds (Figure 12 sweeps).
    pub fn with_rounds(rounds: usize) -> Self {
        LayeredGraphEstimator {
            rounds,
            seed: 0x16A9,
        }
    }

    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a LgSynopsis> {
        crate::expect_synopsis!("LGraph", Synopsis::LayeredGraph, inputs, idx)
    }

    /// Propagates column r-vectors through the pattern of the next matrix:
    /// `rv_C[j] = min over k with B[k,j] != 0 of rv_A[k]`.
    fn advance(&self, a: &LgSynopsis, b: &LgSynopsis) -> Result<LgSynopsis> {
        let pattern = b.pattern.as_ref().ok_or_else(|| {
            EstimatorError::Internal(
                "LGraph: right operand of a product must be a base matrix \
                 (left-deep chains only)"
                    .into(),
            )
        })?;
        if a.ncols != pattern.nrows() {
            return Err(EstimatorError::dims(
                &OpKind::MatMul,
                (a.nrows, a.ncols),
                (pattern.nrows(), pattern.ncols()),
                "inner dimension",
            ));
        }
        let l = pattern.ncols();
        let rounds = self.rounds;
        let mut out = vec![f32::INFINITY; l * rounds];
        // One pass over B's non-zeros: out[j] = min(out[j], rv_A[k]).
        for k in 0..pattern.nrows() {
            let (cols, _) = pattern.row(k);
            if cols.is_empty() {
                continue;
            }
            let src = a.rvec(k);
            for &j in cols {
                let dst = &mut out[j as usize * rounds..(j as usize + 1) * rounds];
                for (d, &s) in dst.iter_mut().zip(src) {
                    if s < *d {
                        *d = s;
                    }
                }
            }
        }
        let mut syn = LgSynopsis {
            nrows: a.nrows,
            ncols: l,
            col_rvecs: out,
            rounds,
            pattern: None,
            nnz_est: 0.0,
        };
        // Eq. 6: sum the per-root (per-column) count estimates.
        let leaf_count = a.nrows as f64;
        syn.nnz_est = (0..l).map(|j| syn.col_count_estimate(j, leaf_count)).sum();
        Ok(syn)
    }
}

impl SparsityEstimator for LayeredGraphEstimator {
    fn cache_key(&self) -> String {
        format!("{}:r={},seed={}", self.name(), self.rounds, self.seed)
    }

    fn name(&self) -> &'static str {
        "LGraph"
    }

    /// Builds the leaf synopsis: assigns exponential r-vectors to the rows
    /// (level-1 leaves) and folds them into per-column vectors — a single
    /// pass over the non-zeros, `O(r · (m + nnz))`.
    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        let rounds = self.rounds;
        let mut rng = SplitMix64::new(self.seed);
        let mut cols = vec![f32::INFINITY; m.ncols() * rounds];
        let mut leaf = vec![0f32; rounds];
        for i in 0..m.nrows() {
            let (row_cols, _) = m.row(i);
            if row_cols.is_empty() {
                continue;
            }
            for v in &mut leaf {
                *v = sample_exp(&mut rng);
            }
            for &j in row_cols {
                let dst = &mut cols[j as usize * rounds..(j as usize + 1) * rounds];
                for (d, &s) in dst.iter_mut().zip(leaf.iter()) {
                    if s < *d {
                        *d = s;
                    }
                }
            }
        }
        Ok(Synopsis::LayeredGraph(LgSynopsis {
            nrows: m.nrows(),
            ncols: m.ncols(),
            col_rvecs: cols,
            rounds,
            pattern: Some(Arc::clone(m)),
            nnz_est: m.nnz() as f64,
        }))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        if !matches!(op, OpKind::MatMul) {
            return Err(EstimatorError::unsupported(self.name(), op));
        }
        let a = self.unwrap(inputs, 0)?;
        let b = self.unwrap(inputs, 1)?;
        Ok(self.advance(a, b)?.sparsity())
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        if !matches!(op, OpKind::MatMul) {
            return Err(EstimatorError::unsupported(self.name(), op));
        }
        let a = self.unwrap(inputs, 0)?;
        let b = self.unwrap(inputs, 1)?;
        Ok(Synopsis::LayeredGraph(self.advance(a, b)?))
    }
}

/// Exponential(1) variate from the synopsis RNG via inversion sampling
/// (`-ln(1 - U)`).
fn sample_exp(rng: &mut SplitMix64) -> f32 {
    let u = rng.next_f64();
    (-(1.0 - u).ln()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(e: &LayeredGraphEstimator, m: &CsrMatrix) -> Synopsis {
        e.build(&Arc::new(m.clone())).unwrap()
    }

    #[test]
    fn single_product_close_to_truth() {
        let mut r = rng(1);
        let a = gen::rand_uniform(&mut r, 120, 100, 0.03);
        let b = gen::rand_uniform(&mut r, 100, 120, 0.04);
        let e = LayeredGraphEstimator::with_rounds(64);
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&e, &a), &syn(&e, &b)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.3, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn chain_estimation_left_deep() {
        let mut r = rng(2);
        let g = gen::rand_uniform(&mut r, 80, 80, 0.03);
        let e = LayeredGraphEstimator::with_rounds(64);
        let s1 = syn(&e, &g);
        let s2 = syn(&e, &g);
        let mid = e.propagate(&OpKind::MatMul, &[&s1, &s2]).unwrap();
        let est = e.estimate(&OpKind::MatMul, &[&mid, &syn(&e, &g)]).unwrap();
        let gg = ops::bool_matmul(&g, &g).unwrap();
        let truth = ops::bool_matmul(&gg, &g).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.5, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn empty_columns_estimated_zero() {
        // B has empty columns -> unreachable roots -> zero counts.
        let a = CsrMatrix::identity(10);
        let b = CsrMatrix::from_triples(10, 10, vec![(0, 0, 1.0), (5, 0, 1.0)]).unwrap();
        let e = LayeredGraphEstimator::default();
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&e, &a), &syn(&e, &b)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        // Output: column 0 has 2 non-zeros, rest empty -> s = 0.02.
        assert!((truth - 0.02).abs() < 1e-12);
        assert!(est > 0.0 && est < 0.1, "est {est}");
    }

    #[test]
    fn permutation_product_exactish() {
        // A permutation reaches each root from exactly one leaf; the count
        // estimate for a single-leaf column is exact ((r-1)/((r-1)·v)
        // clamped to 1 leaf... clamped by leaf_count bound).
        let mut r = rng(3);
        let p = gen::permutation(&mut r, 50);
        let x = gen::rand_uniform(&mut r, 50, 30, 0.1);
        let e = LayeredGraphEstimator::with_rounds(128);
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&e, &p), &syn(&e, &x)])
            .unwrap();
        let truth = ops::bool_matmul(&p, &x).unwrap().sparsity();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.6, "relative error {rel}");
    }

    #[test]
    fn unsupported_ops_rejected() {
        let mut r = rng(4);
        let a = gen::rand_uniform(&mut r, 10, 10, 0.2);
        let e = LayeredGraphEstimator::default();
        let s = syn(&e, &a);
        assert!(e.estimate(&OpKind::EwMul, &[&s, &s]).is_err());
        assert!(e.estimate(&OpKind::Transpose, &[&s]).is_err());
    }

    #[test]
    fn right_operand_must_be_leaf() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 10, 10, 0.3);
        let e = LayeredGraphEstimator::default();
        let s = syn(&e, &a);
        let mid = e.propagate(&OpKind::MatMul, &[&s, &s]).unwrap();
        // mid has no pattern: using it as the right operand fails.
        assert!(e.estimate(&OpKind::MatMul, &[&s, &mid]).is_err());
    }

    #[test]
    fn more_rounds_reduce_error_in_expectation() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 150, 120, 0.02);
        let b = gen::rand_uniform(&mut r, 120, 150, 0.03);
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        let err = |rounds: usize| {
            let mut total = 0.0;
            for seed in 0..5u64 {
                let e = LayeredGraphEstimator { rounds, seed };
                let est = e
                    .estimate(&OpKind::MatMul, &[&syn(&e, &a), &syn(&e, &b)])
                    .unwrap();
                total += est.max(truth) / est.min(truth).max(1e-12);
            }
            total / 5.0
        };
        let coarse = err(2);
        let fine = err(128);
        assert!(
            fine <= coarse + 0.05,
            "expected error to shrink: rounds=2 -> {coarse}, rounds=128 -> {fine}"
        );
    }
}
