//! The naive bitset estimator `E_bmm` (Section 2.1, Eq. 3) — an *exact*
//! boolean matrix multiply over bit-packed operands, plus the multi-threaded
//! variant of Appendix B.
//!
//! The synopsis is a dense bit matrix (64x smaller than FP64), so both space
//! `O(mn + nl + ml)` and time `O(mnl)` scale with dense sizes — the paper's
//! reason it fails on ultra-sparse inputs (≈8 TB for B2.1). The estimator
//! takes an optional memory budget and reports
//! [`EstimatorError::SynopsisTooLarge`] when exceeded, mirroring those
//! out-of-memory `✗` entries.

use std::sync::Arc;

use mnc_kernels::{or4_into, or_into, popcount, row_chunks, WorkerPool};
use mnc_matrix::CsrMatrix;

use crate::{EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// A dense, row-major bit matrix.
#[derive(Debug, Clone)]
pub struct BitsetSynopsis {
    nrows: usize,
    ncols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Cached population count, maintained at construction and after every
    /// bulk mutation so [`BitsetSynopsis::count_ones`] never re-scans.
    ones: u64,
}

impl BitsetSynopsis {
    /// All-zero bit matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        let words_per_row = ncols.div_ceil(64);
        BitsetSynopsis {
            nrows,
            ncols,
            words_per_row,
            bits: vec![0; nrows * words_per_row],
            ones: 0,
        }
    }

    /// Packs the non-zero pattern of a CSR matrix.
    pub fn from_matrix(m: &CsrMatrix) -> Self {
        let mut b = Self::zeros(m.nrows(), m.ncols());
        for i in 0..m.nrows() {
            let (cols, _) = m.row(i);
            let base = i * b.words_per_row;
            for &c in cols {
                b.bits[base + (c as usize >> 6)] |= 1u64 << (c as usize & 63);
            }
        }
        b.ones = popcount(&b.bits);
        b
    }

    /// Packs the non-zero pattern on `threads` pool workers, each filling a
    /// disjoint row-chunk of the bit buffer. Bit-identical to
    /// [`BitsetSynopsis::from_matrix`].
    pub fn from_matrix_parallel(m: &CsrMatrix, threads: usize) -> Self {
        let threads = threads.clamp(1, m.nrows().max(1));
        let mut b = Self::zeros(m.nrows(), m.ncols());
        let wpr = b.words_per_row;
        if threads == 1 || wpr == 0 {
            return Self::from_matrix(m);
        }
        {
            let mut rest = b.bits.as_mut_slice();
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (lo, hi) in row_chunks(m.nrows(), threads) {
                let (chunk, tail) = rest.split_at_mut((hi - lo) * wpr);
                rest = tail;
                tasks.push(Box::new(move || {
                    for (k, i) in (lo..hi).enumerate() {
                        let (cols, _) = m.row(i);
                        let base = k * wpr;
                        for &c in cols {
                            chunk[base + (c as usize >> 6)] |= 1u64 << (c as usize & 63);
                        }
                    }
                }));
            }
            WorkerPool::new(threads).run_tasks(tasks);
        }
        b.ones = popcount(&b.bits);
        b
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The packed words of row `i`.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Bit value at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + (j >> 6)] >> (j & 63) & 1 == 1
    }

    /// Sets bit `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize) {
        let word = &mut self.bits[i * self.words_per_row + (j >> 6)];
        let mask = 1u64 << (j & 63);
        self.ones += u64::from(*word & mask == 0);
        *word |= mask;
    }

    /// Exact population count (Eq. 3's `bitcount`) — cached, O(1).
    pub fn count_ones(&self) -> u64 {
        debug_assert_eq!(self.ones, popcount(&self.bits), "stale cached popcount");
        self.ones
    }

    /// Exact sparsity of the described matrix.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.count_ones() as f64 / cells
        }
    }

    /// Synopsis size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }

    /// Measured heap bytes retained by the bit buffer (capacity-based).
    pub fn heap_bytes(&self) -> u64 {
        (self.bits.capacity() * 8) as u64
    }

    /// Analytical size in bytes for an `m x n` bit matrix.
    pub fn analytic_size_bytes(nrows: u64, ncols: u64) -> u64 {
        nrows * ncols.div_ceil(64) * 8
    }

    /// The raw packed words, row-major, `ncols.div_ceil(64)` words per row.
    /// Exposed for external serialization (the served catalog's shadow
    /// sidecars persist bitsets verbatim).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reconstructs a synopsis from its shape and packed words (the inverse
    /// of [`BitsetSynopsis::words`]). The cached popcount is recomputed, so
    /// the result is valid regardless of where the words came from. Returns
    /// `None` when the word count does not match the shape.
    pub fn from_words(nrows: usize, ncols: usize, bits: Vec<u64>) -> Option<Self> {
        let words_per_row = ncols.div_ceil(64);
        if bits.len() != nrows * words_per_row {
            return None;
        }
        let ones = popcount(&bits);
        Some(BitsetSynopsis {
            nrows,
            ncols,
            words_per_row,
            bits,
            ones,
        })
    }
}

/// Exact boolean matrix multiply `bC = bA bB`: row `i` of the output is the
/// OR of the `B` rows selected by the set bits of `A`'s row `i` — bitwise
/// AND is multiply, OR is add (Section 2.1).
pub fn bool_mm(a: &BitsetSynopsis, b: &BitsetSynopsis) -> BitsetSynopsis {
    assert_eq!(a.ncols, b.nrows, "bool_mm: inner dimension mismatch");
    let mut c = BitsetSynopsis::zeros(a.nrows, b.ncols);
    bool_mm_rows(a, b, &mut c.bits, 0, a.nrows, c.words_per_row);
    c.ones = popcount(&c.bits);
    c
}

/// Multi-threaded exact boolean matrix multiply (Appendix B): output rows
/// are partitioned across `threads` workers.
pub fn bool_mm_parallel(a: &BitsetSynopsis, b: &BitsetSynopsis, threads: usize) -> BitsetSynopsis {
    assert_eq!(
        a.ncols, b.nrows,
        "bool_mm_parallel: inner dimension mismatch"
    );
    let threads = threads.max(1);
    let mut c = BitsetSynopsis::zeros(a.nrows, b.ncols);
    if threads == 1 || a.nrows < threads {
        bool_mm_rows(a, b, &mut c.bits, 0, a.nrows, c.words_per_row);
        c.ones = popcount(&c.bits);
        return c;
    }
    let wpr = c.words_per_row;
    {
        let mut rest = c.bits.as_mut_slice();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (start, end) in row_chunks(a.nrows, threads) {
            let (chunk, tail) = rest.split_at_mut((end - start) * wpr);
            rest = tail;
            tasks.push(Box::new(move || {
                bool_mm_rows_into(a, b, chunk, start, end, wpr);
            }));
        }
        WorkerPool::new(threads).run_tasks(tasks);
    }
    c.ones = popcount(&c.bits);
    c
}

fn bool_mm_rows(
    a: &BitsetSynopsis,
    b: &BitsetSynopsis,
    out: &mut [u64],
    start: usize,
    end: usize,
    wpr: usize,
) {
    bool_mm_rows_into(a, b, &mut out[start * wpr..end * wpr], start, end, wpr);
}

/// Computes output rows `start..end` into `out` (relative to `start`).
///
/// The set bits of each left-operand row select the `B` rows to OR; they are
/// folded four at a time ([`or4_into`]) so the destination row is traversed
/// once per quartet instead of once per selected row. OR is associative,
/// commutative, and idempotent, so the batching is bit-identical to the
/// one-row-at-a-time loop.
fn bool_mm_rows_into(
    a: &BitsetSynopsis,
    b: &BitsetSynopsis,
    out: &mut [u64],
    start: usize,
    end: usize,
    wpr: usize,
) {
    let mut selected: Vec<usize> = Vec::new();
    for i in start..end {
        let dst = &mut out[(i - start) * wpr..(i - start + 1) * wpr];
        selected.clear();
        for (w_idx, &word) in a.row_words(i).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                selected.push((w_idx << 6) + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        let mut quads = selected.chunks_exact(4);
        for q in &mut quads {
            or4_into(
                dst,
                b.row_words(q[0]),
                b.row_words(q[1]),
                b.row_words(q[2]),
                b.row_words(q[3]),
            );
        }
        for &k in quads.remainder() {
            or_into(dst, b.row_words(k));
        }
    }
}

/// The bitset estimator configuration.
#[derive(Debug, Clone)]
pub struct BitsetEstimator {
    /// Worker threads for the boolean product (Appendix B); 1 = sequential.
    pub threads: usize,
    /// Optional synopsis memory budget in bytes; `None` = unbounded.
    pub memory_limit: Option<u64>,
}

impl Default for BitsetEstimator {
    fn default() -> Self {
        BitsetEstimator {
            threads: 1,
            memory_limit: None,
        }
    }
}

impl BitsetEstimator {
    /// Sequential estimator with a memory budget.
    pub fn with_memory_limit(limit: u64) -> Self {
        BitsetEstimator {
            threads: 1,
            memory_limit: Some(limit),
        }
    }

    /// Multi-threaded estimator (Appendix B).
    pub fn parallel(threads: usize) -> Self {
        BitsetEstimator {
            threads,
            memory_limit: None,
        }
    }

    fn check_budget(&self, nrows: usize, ncols: usize) -> Result<()> {
        if let Some(limit) = self.memory_limit {
            let bytes = BitsetSynopsis::analytic_size_bytes(nrows as u64, ncols as u64);
            if bytes > limit {
                return Err(EstimatorError::SynopsisTooLarge {
                    estimator: "Bitset",
                    bytes,
                    limit,
                });
            }
        }
        Ok(())
    }

    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a BitsetSynopsis> {
        crate::expect_synopsis!("Bitset", Synopsis::Bitset, inputs, idx)
    }

    fn apply(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<BitsetSynopsis> {
        let a = self.unwrap(inputs, 0)?;
        let out = match op {
            OpKind::MatMul => {
                let b = self.unwrap(inputs, 1)?;
                self.check_budget(a.nrows, b.ncols)?;
                if self.threads > 1 {
                    bool_mm_parallel(a, b, self.threads)
                } else {
                    bool_mm(a, b)
                }
            }
            OpKind::EwAdd | OpKind::EwMax => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = a.clone();
                or_into(&mut c.bits, &b.bits);
                c.ones = popcount(&c.bits);
                c
            }
            OpKind::EwMul | OpKind::EwMin => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = a.clone();
                mnc_kernels::and_into(&mut c.bits, &b.bits);
                c.ones = popcount(&c.bits);
                c
            }
            OpKind::Transpose => {
                let mut c = BitsetSynopsis::zeros(a.ncols, a.nrows);
                for i in 0..a.nrows {
                    for (w_idx, &word) in a.row_words(i).iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            let j = (w_idx << 6) + word.trailing_zeros() as usize;
                            word &= word - 1;
                            c.set(j, i);
                        }
                    }
                }
                c
            }
            OpKind::Reshape { rows, cols } => {
                if a.nrows * a.ncols != rows * cols {
                    return Err(EstimatorError::shape(
                        op,
                        (a.nrows, a.ncols),
                        "cell count must be conserved",
                    ));
                }
                let mut c = BitsetSynopsis::zeros(*rows, *cols);
                for i in 0..a.nrows {
                    for (w_idx, &word) in a.row_words(i).iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            let j = (w_idx << 6) + word.trailing_zeros() as usize;
                            word &= word - 1;
                            let p = i * a.ncols + j;
                            c.set(p / cols, p % cols);
                        }
                    }
                }
                c
            }
            OpKind::DiagV2M => {
                if a.ncols != 1 {
                    return Err(EstimatorError::shape(
                        op,
                        (a.nrows, a.ncols),
                        "column vector required",
                    ));
                }
                self.check_budget(a.nrows, a.nrows)?;
                let mut c = BitsetSynopsis::zeros(a.nrows, a.nrows);
                for i in 0..a.nrows {
                    if a.get(i, 0) {
                        c.set(i, i);
                    }
                }
                c
            }
            OpKind::DiagM2V => {
                if a.nrows != a.ncols {
                    return Err(EstimatorError::shape(
                        op,
                        (a.nrows, a.ncols),
                        "square matrix required",
                    ));
                }
                let mut c = BitsetSynopsis::zeros(a.nrows, 1);
                for i in 0..a.nrows {
                    if a.get(i, i) {
                        c.set(i, 0);
                    }
                }
                c
            }
            OpKind::Rbind => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = BitsetSynopsis::zeros(a.nrows + b.nrows, a.ncols);
                c.bits[..a.bits.len()].copy_from_slice(&a.bits);
                c.bits[a.bits.len()..].copy_from_slice(&b.bits);
                c.ones = a.ones + b.ones;
                c
            }
            OpKind::Cbind => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = BitsetSynopsis::zeros(a.nrows, a.ncols + b.ncols);
                for i in 0..a.nrows {
                    for j in 0..a.ncols {
                        if a.get(i, j) {
                            c.set(i, j);
                        }
                    }
                    for j in 0..b.ncols {
                        if b.get(i, j) {
                            c.set(i, a.ncols + j);
                        }
                    }
                }
                c
            }
            OpKind::Neq0 => a.clone(),
            OpKind::Eq0 => {
                let mut c = a.clone();
                for w in &mut c.bits {
                    *w = !*w;
                }
                // Clear the padding bits past `ncols` in each row.
                let tail_bits = a.ncols & 63;
                if tail_bits != 0 {
                    let mask = (1u64 << tail_bits) - 1;
                    for i in 0..a.nrows {
                        c.bits[i * a.words_per_row + a.words_per_row - 1] &= mask;
                    }
                }
                c.ones = popcount(&c.bits);
                c
            }
        };
        Ok(out)
    }
}

impl SparsityEstimator for BitsetEstimator {
    fn name(&self) -> &'static str {
        "Bitset"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        self.check_budget(m.nrows(), m.ncols())?;
        Ok(Synopsis::Bitset(BitsetSynopsis::from_matrix_parallel(
            m,
            self.threads,
        )))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        Ok(self.apply(op, inputs)?.sparsity())
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        Ok(Synopsis::Bitset(self.apply(op, inputs)?))
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(m: &CsrMatrix) -> Synopsis {
        Synopsis::Bitset(BitsetSynopsis::from_matrix(m))
    }

    #[test]
    fn pack_roundtrip() {
        let mut r = rng(1);
        let m = gen::rand_uniform(&mut r, 20, 70, 0.1);
        let b = BitsetSynopsis::from_matrix(&m);
        assert_eq!(b.count_ones(), m.nnz() as u64);
        for (i, j, _) in m.iter_triples() {
            assert!(b.get(i, j));
        }
        assert!((b.sparsity() - m.sparsity()).abs() < 1e-12);
    }

    #[test]
    fn parallel_pack_is_bit_identical() {
        let mut r = rng(11);
        for (rows, cols, s) in [(40usize, 90usize, 0.1f64), (3, 200, 0.05), (64, 64, 0.3)] {
            let m = gen::rand_uniform(&mut r, rows, cols, s);
            let seq = BitsetSynopsis::from_matrix(&m);
            for threads in [1, 2, 3, 8, 64] {
                let par = BitsetSynopsis::from_matrix_parallel(&m, threads);
                assert_eq!(par.bits, seq.bits, "{rows}x{cols} threads={threads}");
            }
        }
        let empty = CsrMatrix::zeros(0, 4);
        assert_eq!(
            BitsetSynopsis::from_matrix_parallel(&empty, 4).bits,
            BitsetSynopsis::from_matrix(&empty).bits
        );
    }

    #[test]
    fn bool_mm_is_exact() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 30, 40, 0.1);
        let b = gen::rand_uniform(&mut r, 40, 25, 0.15);
        let est = BitsetEstimator::default()
            .estimate(&OpKind::MatMul, &[&syn(&a), &syn(&b)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        assert!((est - truth).abs() < 1e-15);
    }

    #[test]
    fn parallel_mm_matches_sequential() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 97, 64, 0.08);
        let b = gen::rand_uniform(&mut r, 64, 83, 0.1);
        let (ba, bb) = (
            BitsetSynopsis::from_matrix(&a),
            BitsetSynopsis::from_matrix(&b),
        );
        let seq = bool_mm(&ba, &bb);
        for threads in [2, 3, 4, 8] {
            let par = bool_mm_parallel(&ba, &bb, threads);
            assert_eq!(par.bits, seq.bits, "threads = {threads}");
        }
    }

    #[test]
    fn elementwise_exact() {
        let mut r = rng(4);
        let a = gen::rand_uniform(&mut r, 15, 90, 0.2);
        let b = gen::rand_uniform(&mut r, 15, 90, 0.3);
        let e = BitsetEstimator::default();
        let add = e.estimate(&OpKind::EwAdd, &[&syn(&a), &syn(&b)]).unwrap();
        let mul = e.estimate(&OpKind::EwMul, &[&syn(&a), &syn(&b)]).unwrap();
        assert!((add - ops::ew_add(&a, &b).unwrap().sparsity()).abs() < 1e-15);
        assert!((mul - ops::ew_mul(&a, &b).unwrap().sparsity()).abs() < 1e-15);
    }

    #[test]
    fn reorg_exact() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 12, 66, 0.2);
        let e = BitsetEstimator::default();
        let t = e.propagate(&OpKind::Transpose, &[&syn(&a)]).unwrap();
        assert!((t.sparsity() - a.sparsity()).abs() < 1e-15);
        assert_eq!(t.shape(), (66, 12));

        let rs = e
            .propagate(&OpKind::Reshape { rows: 66, cols: 12 }, &[&syn(&a)])
            .unwrap();
        let truth = ops::reshape(&a, 66, 12).unwrap();
        if let Synopsis::Bitset(bs) = &rs {
            for (i, j, _) in truth.iter_triples() {
                assert!(bs.get(i, j));
            }
            assert_eq!(bs.count_ones(), truth.nnz() as u64);
        } else {
            panic!("expected bitset synopsis");
        }
    }

    #[test]
    fn eq0_clears_padding() {
        // ncols = 70 is not a multiple of 64: the complement must not count
        // the 58 padding bits.
        let a = CsrMatrix::zeros(3, 70);
        let e = BitsetEstimator::default();
        let z = e.estimate(&OpKind::Eq0, &[&syn(&a)]).unwrap();
        assert!((z - 1.0).abs() < 1e-15);
        let nz = e.estimate(&OpKind::Neq0, &[&syn(&a)]).unwrap();
        assert_eq!(nz, 0.0);
    }

    #[test]
    fn bind_and_diag_exact() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 5, 9, 0.3);
        let b = gen::rand_uniform(&mut r, 7, 9, 0.2);
        let e = BitsetEstimator::default();
        let rb = e.estimate(&OpKind::Rbind, &[&syn(&a), &syn(&b)]).unwrap();
        assert!((rb - ops::rbind(&a, &b).unwrap().sparsity()).abs() < 1e-15);

        let c = gen::rand_uniform(&mut r, 5, 4, 0.5);
        let cb = e.estimate(&OpKind::Cbind, &[&syn(&a), &syn(&c)]).unwrap();
        assert!((cb - ops::cbind(&a, &c).unwrap().sparsity()).abs() < 1e-15);

        let v = gen::ones_vector(6);
        let d = e.estimate(&OpKind::DiagV2M, &[&syn(&v)]).unwrap();
        assert!((d - 6.0 / 36.0).abs() < 1e-15);
    }

    #[test]
    fn memory_budget_enforced() {
        let e = BitsetEstimator::with_memory_limit(8);
        let m = Arc::new(CsrMatrix::zeros(100, 100));
        assert!(matches!(
            e.build(&m),
            Err(EstimatorError::SynopsisTooLarge { .. })
        ));
    }

    #[test]
    fn analytic_size_matches_measured() {
        let b = BitsetSynopsis::zeros(100, 130);
        assert_eq!(
            b.size_bytes(),
            BitsetSynopsis::analytic_size_bytes(100, 130)
        );
    }

    #[test]
    fn cached_count_survives_every_op() {
        let mut r = rng(9);
        let a = gen::rand_uniform(&mut r, 10, 70, 0.2);
        let b = gen::rand_uniform(&mut r, 10, 70, 0.3);
        let (sa, sb) = (syn(&a), syn(&b));
        let sat = syn(&a.transpose());
        let e = BitsetEstimator::default();
        for (op, inputs) in [
            (OpKind::MatMul, vec![&sat, &sb]),
            (OpKind::EwAdd, vec![&sa, &sb]),
            (OpKind::EwMul, vec![&sa, &sb]),
            (OpKind::Rbind, vec![&sa, &sb]),
            (OpKind::Cbind, vec![&sa, &sb]),
            (OpKind::Eq0, vec![&sa]),
            (OpKind::Neq0, vec![&sa]),
            (OpKind::Transpose, vec![&sa]),
            (OpKind::Reshape { rows: 70, cols: 10 }, vec![&sa]),
        ] {
            let out = e.propagate(&op, &inputs).unwrap();
            let Synopsis::Bitset(bs) = &out else {
                panic!("expected bitset");
            };
            // count_ones() itself debug_asserts cache freshness; compare
            // against a direct scan for release builds too.
            assert_eq!(
                bs.count_ones(),
                bs.bits.iter().map(|w| w.count_ones() as u64).sum::<u64>(),
                "{op:?}"
            );
        }
    }

    /// Naive per-cell boolean product, independent of the kernelized
    /// OR-batching inner loop — the proptest oracle.
    fn bool_mm_reference(a: &BitsetSynopsis, b: &BitsetSynopsis) -> BitsetSynopsis {
        let mut c = BitsetSynopsis::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for k in 0..a.ncols() {
                if a.get(i, k) {
                    for j in 0..b.ncols() {
                        if b.get(k, j) {
                            c.set(i, j);
                        }
                    }
                }
            }
        }
        c
    }

    fn gen_bitset(seed: u64, rows: usize, cols: usize, keep_mod: u64) -> BitsetSynopsis {
        let mut s = seed | 1;
        let mut b = BitsetSynopsis::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (s >> 33).is_multiple_of(keep_mod) {
                    b.set(i, j);
                }
            }
        }
        b
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// `n` up to 90 crosses the 64-bit word boundary, exercising
            /// multi-word left rows and the `or4_into` quad batching with a
            /// non-empty remainder.
            #[test]
            fn bool_mm_is_bit_identical_to_reference(
                (m, n, l, seed, keep) in
                    (1usize..40, 1usize..90, 1usize..40, any::<u64>(), 1u64..8)
            ) {
                let a = gen_bitset(seed, m, n, keep);
                let b = gen_bitset(seed ^ 0xABCD, n, l, keep);
                let reference = bool_mm_reference(&a, &b);
                let kernel = bool_mm(&a, &b);
                prop_assert_eq!(&kernel.bits, &reference.bits);
                prop_assert_eq!(kernel.count_ones(), reference.count_ones());
                for threads in [2usize, 5] {
                    let par = bool_mm_parallel(&a, &b, threads);
                    prop_assert_eq!(&par.bits, &reference.bits);
                    prop_assert_eq!(par.count_ones(), reference.count_ones());
                }
            }
        }
    }
}
