//! The density map estimator `E_dm` (Section 2.2, Eq. 4).
//!
//! A density map partitions a matrix into `b x b` blocks and stores each
//! block's sparsity. The output density map of a product is computed by a
//! pseudo matrix multiplication that replaces multiply with the average-case
//! estimator `E_ac` and plus with probabilistic propagation `⊕`.
//!
//! The block size trades accuracy for overhead: `b = 1` degenerates to the
//! bitset estimator, `b = d` to `E_ac` (Section 2.2). The paper's §2.2
//! example — smaller blocks giving *higher* error on a column-vector
//! pattern — is reproduced in this module's tests with the paper's exact
//! numbers (4,429 / 3,942 / 3,179).

use std::sync::{Arc, OnceLock};

use mnc_kernels::WorkerPool;
use mnc_matrix::CsrMatrix;

use crate::{prob_or, EstimatorError, OpKind, Result, SparsityEstimator, Synopsis};

/// Default block size used by the paper.
pub const DEFAULT_BLOCK: usize = 256;

/// A block density map.
#[derive(Debug)]
pub struct DmSynopsis {
    /// Rows of the described matrix.
    pub nrows: usize,
    /// Columns of the described matrix.
    pub ncols: usize,
    /// Block size `b`.
    pub block: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Row-major grid of block sparsities.
    dens: Vec<f64>,
    /// Lazily-cached per-block-row lists of non-zero block columns — the
    /// sparse index the zero-skip Eq. 4 pseudo-product walks instead of
    /// rescanning the full grid on every estimate.
    support: OnceLock<Vec<Vec<u32>>>,
}

impl Clone for DmSynopsis {
    fn clone(&self) -> Self {
        // The support cache is intentionally *not* carried over: callers
        // clone maps precisely to mutate the density grid in place
        // (elementwise ops, complement), which would silently invalidate it.
        DmSynopsis {
            nrows: self.nrows,
            ncols: self.ncols,
            block: self.block,
            grid_rows: self.grid_rows,
            grid_cols: self.grid_cols,
            dens: self.dens.clone(),
            support: OnceLock::new(),
        }
    }
}

impl DmSynopsis {
    /// Builds an all-zero map of the given shape.
    pub fn zeros(nrows: usize, ncols: usize, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        let grid_rows = nrows.div_ceil(block).max(usize::from(nrows == 0));
        let grid_cols = ncols.div_ceil(block).max(usize::from(ncols == 0));
        DmSynopsis {
            nrows,
            ncols,
            block,
            grid_rows,
            grid_cols,
            dens: vec![0.0; grid_rows * grid_cols],
            support: OnceLock::new(),
        }
    }

    /// Builds the density map of a matrix in one scan over the non-zeros.
    pub fn from_matrix(m: &CsrMatrix, block: usize) -> Self {
        let mut dm = Self::zeros(m.nrows(), m.ncols(), block);
        for (i, j, _) in m.iter_triples() {
            dm.dens[(i / block) * dm.grid_cols + j / block] += 1.0;
        }
        for bi in 0..dm.grid_rows {
            for bj in 0..dm.grid_cols {
                let cells = dm.block_rows(bi) as f64 * dm.block_cols(bj) as f64;
                if cells > 0.0 {
                    dm.dens[bi * dm.grid_cols + bj] /= cells;
                }
            }
        }
        dm
    }

    /// Number of matrix rows covered by block row `bi` (edge blocks shrink).
    fn block_rows(&self, bi: usize) -> usize {
        (self.nrows - bi * self.block).min(self.block)
    }

    /// Number of matrix columns covered by block column `bj`.
    fn block_cols(&self, bj: usize) -> usize {
        (self.ncols - bj * self.block).min(self.block)
    }

    /// Block sparsity at grid position `(bi, bj)`.
    pub fn density(&self, bi: usize, bj: usize) -> f64 {
        self.dens[bi * self.grid_cols + bj]
    }

    /// Estimated total non-zeros (block densities scaled by block cells).
    pub fn nnz(&self) -> f64 {
        let mut total = 0.0;
        for bi in 0..self.grid_rows {
            for bj in 0..self.grid_cols {
                total +=
                    self.density(bi, bj) * self.block_rows(bi) as f64 * self.block_cols(bj) as f64;
            }
        }
        total
    }

    /// Estimated sparsity of the described matrix.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            (self.nnz() / cells).clamp(0.0, 1.0)
        }
    }

    /// Synopsis size in bytes (FP64 per block, as in the paper's internals).
    pub fn size_bytes(&self) -> u64 {
        (self.dens.len() * 8) as u64
    }

    /// Measured heap bytes retained by the density grid (capacity-based).
    /// The lazily-built support marginals are a derived acceleration
    /// structure, not part of the paper's synopsis, and are excluded.
    pub fn heap_bytes(&self) -> u64 {
        (self.dens.capacity() * 8) as u64
    }

    /// Analytical size in bytes for an `m x n` map with block size `b`.
    pub fn analytic_size_bytes(nrows: u64, ncols: u64, block: u64) -> u64 {
        nrows.div_ceil(block) * ncols.div_ceil(block) * 8
    }

    /// The row-major grid of block sparsities. Exposed for external
    /// serialization (the served catalog's shadow sidecars persist density
    /// maps verbatim).
    pub fn densities(&self) -> &[f64] {
        &self.dens
    }

    /// Reconstructs a map from its shape, block size, and density grid (the
    /// inverse of [`DmSynopsis::densities`]). Returns `None` when the grid
    /// length does not match the shape, or `block` is zero.
    pub fn from_densities(
        nrows: usize,
        ncols: usize,
        block: usize,
        dens: Vec<f64>,
    ) -> Option<Self> {
        if block == 0 {
            return None;
        }
        let grid_rows = nrows.div_ceil(block).max(usize::from(nrows == 0));
        let grid_cols = ncols.div_ceil(block).max(usize::from(ncols == 0));
        if dens.len() != grid_rows * grid_cols {
            return None;
        }
        Some(DmSynopsis {
            nrows,
            ncols,
            block,
            grid_rows,
            grid_cols,
            dens,
            support: OnceLock::new(),
        })
    }

    /// Per-block-row lists of the block columns whose density is non-zero,
    /// computed once on first use and cached on the synopsis (`set_density`
    /// invalidates). These marginals let the Eq. 4 pseudo-product and other
    /// consumers skip the `O(grid²)` rescan per estimate call.
    pub fn row_support(&self) -> &[Vec<u32>] {
        self.support.get_or_init(|| {
            (0..self.grid_rows)
                .map(|bi| {
                    self.dens[bi * self.grid_cols..(bi + 1) * self.grid_cols]
                        .iter()
                        .enumerate()
                        .filter(|&(_, &d)| d != 0.0)
                        .map(|(bj, _)| bj as u32)
                        .collect()
                })
                .collect()
        })
    }

    /// Sets the block density at grid position `(bi, bj)` (used by the
    /// dynamic density map's resampling).
    pub fn set_density(&mut self, bi: usize, bj: usize, d: f64) {
        let idx = bi * self.grid_cols + bj;
        self.dens[idx] = d;
        self.support = OnceLock::new();
    }

    /// Expected non-zeros inside the half-open cell rectangle
    /// `[r0, r1) x [c0, c1)`, assuming uniformity *within* each block.
    /// Used to re-bin maps for structural operations (rbind/cbind) and to
    /// re-grid resampled dynamic maps.
    pub fn expected_nnz_in_rect(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        let b = self.block;
        let mut total = 0.0;
        let (bi0, bi1) = (r0 / b, r1.div_ceil(b));
        let (bj0, bj1) = (c0 / b, c1.div_ceil(b));
        for bi in bi0..bi1.min(self.grid_rows) {
            let br0 = bi * b;
            let br1 = br0 + self.block_rows(bi);
            let overlap_r = r1.min(br1).saturating_sub(r0.max(br0));
            if overlap_r == 0 {
                continue;
            }
            for bj in bj0..bj1.min(self.grid_cols) {
                let bc0 = bj * b;
                let bc1 = bc0 + self.block_cols(bj);
                let overlap_c = c1.min(bc1).saturating_sub(c0.max(bc0));
                if overlap_c == 0 {
                    continue;
                }
                total += self.density(bi, bj) * overlap_r as f64 * overlap_c as f64;
            }
        }
        total
    }
}

/// The density map estimator with configurable block size.
#[derive(Debug, Clone, Copy)]
pub struct DensityMapEstimator {
    /// Block size `b` (default 256, as in the paper).
    pub block: usize,
    threads: usize,
}

impl Default for DensityMapEstimator {
    fn default() -> Self {
        DensityMapEstimator {
            block: DEFAULT_BLOCK,
            threads: 1,
        }
    }
}

impl DensityMapEstimator {
    /// Estimator with an explicit block size (Figure 12 sweeps).
    pub fn with_block(block: usize) -> Self {
        DensityMapEstimator { block, threads: 1 }
    }

    /// Runs the pseudo-product over `threads` workers (block rows of the
    /// output are independent and merged in index order, so the answer is
    /// bit-identical to the single-threaded one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a DmSynopsis> {
        crate::expect_synopsis!("DMap", Synopsis::DensityMap, inputs, idx)
    }

    fn apply(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<DmSynopsis> {
        let a = self.unwrap(inputs, 0)?;
        let out = match op {
            OpKind::MatMul => {
                let b = self.unwrap(inputs, 1)?;
                if a.ncols != b.nrows {
                    return Err(EstimatorError::dims(
                        op,
                        (a.nrows, a.ncols),
                        (b.nrows, b.ncols),
                        "inner dimension",
                    ));
                }
                // Eq. 4: dmC_ij = ⊕_k E_ac(dmA_ik, dmB_kj) with the actual
                // inner block width as the exponent — folded in complement-
                // product space: `⊕_k (1 - (1-da·db)^{n_k})` is algebraically
                // `1 - Π_k (1 - da·db)^{n_k}`, so the inner loop accumulates
                // the plain complement products (pure multiplies the
                // compiler vectorizes; no `ln`/`exp` per term) and applies
                // the integer block-width exponent once per output cell.
                // All inner blocks share one width except the (at most one)
                // narrower edge block, which gets its own accumulator. Zero
                // blocks of A are skipped through the cached row-support
                // marginals; the inner walk over B's block row is dense —
                // a zero B-block contributes an exact `1.0` factor — so the
                // skipped and visited schedules agree bit for bit, and
                // ascending-`bk` order per output row keeps the threaded
                // run bit-identical to the sequential one.
                let mut c = DmSynopsis::zeros(a.nrows, b.ncols, self.block);
                let a_sup = a.row_support();
                let gc = c.grid_cols;
                let full = a.block;
                let rows = WorkerPool::new(self.threads).run(a.grid_rows, |bi| {
                    let mut q_full = vec![1.0f64; gc];
                    let mut q_edge = vec![1.0f64; gc];
                    let mut edge_n = 0usize;
                    for &bk in &a_sup[bi] {
                        let bk = bk as usize;
                        if bk >= b.grid_rows {
                            continue;
                        }
                        let da = a.density(bi, bk);
                        let n = a.block_cols(bk);
                        let brow = &b.dens[bk * b.grid_cols..(bk + 1) * b.grid_cols];
                        let q = if n == full {
                            &mut q_full
                        } else {
                            edge_n = n;
                            &mut q_edge
                        };
                        for (qj, &db) in q.iter_mut().zip(brow) {
                            *qj *= 1.0 - (da * db).clamp(0.0, 1.0);
                        }
                    }
                    let mut out = vec![0.0f64; gc];
                    for bj in 0..gc {
                        let q = q_full[bj].powi(full as i32) * q_edge[bj].powi(edge_n as i32);
                        out[bj] = (1.0 - q).clamp(0.0, 1.0);
                    }
                    out
                });
                for (bi, row) in rows.into_iter().enumerate() {
                    c.dens[bi * gc..(bi + 1) * gc].copy_from_slice(&row);
                }
                c
            }
            OpKind::EwAdd | OpKind::EwMax => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = a.clone();
                for (d, &s) in c.dens.iter_mut().zip(&b.dens) {
                    *d = prob_or(*d, s);
                }
                c
            }
            OpKind::EwMul | OpKind::EwMin => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = a.clone();
                for (d, &s) in c.dens.iter_mut().zip(&b.dens) {
                    *d *= s;
                }
                c
            }
            OpKind::Transpose => {
                let mut c = DmSynopsis::zeros(a.ncols, a.nrows, self.block);
                for bi in 0..a.grid_rows {
                    for bj in 0..a.grid_cols {
                        c.dens[bj * c.grid_cols + bi] = a.density(bi, bj);
                    }
                }
                c
            }
            OpKind::Reshape { rows, cols } => {
                // Row-wise reshape scatters blocks irregularly; the map keeps
                // only the global sparsity (best effort, sparsity-preserving).
                let mut c = DmSynopsis::zeros(*rows, *cols, self.block);
                let s = a.sparsity();
                for d in &mut c.dens {
                    *d = s;
                }
                c
            }
            OpKind::DiagV2M => {
                if a.ncols != 1 {
                    return Err(EstimatorError::shape(
                        op,
                        (a.nrows, a.ncols),
                        "column vector required",
                    ));
                }
                let m = a.nrows;
                let mut c = DmSynopsis::zeros(m, m, self.block);
                for bi in 0..c.grid_rows {
                    let rows = c.block_rows(bi) as f64;
                    let nnz = a.expected_nnz_in_rect(
                        bi * self.block,
                        bi * self.block + rows as usize,
                        0,
                        1,
                    );
                    let cells = rows * c.block_cols(bi) as f64;
                    c.dens[bi * c.grid_cols + bi] = if cells > 0.0 { nnz / cells } else { 0.0 };
                }
                c
            }
            OpKind::DiagM2V => {
                if a.nrows != a.ncols {
                    return Err(EstimatorError::shape(
                        op,
                        (a.nrows, a.ncols),
                        "square matrix required",
                    ));
                }
                // Each diagonal block (bi, bi) contributes its density times
                // its diagonal length.
                let mut c = DmSynopsis::zeros(a.nrows, 1, self.block);
                for bi in 0..c.grid_rows {
                    let rows = c.block_rows(bi) as f64;
                    let expected = a.density(bi, bi) * rows;
                    c.dens[bi] = if rows > 0.0 {
                        (expected / rows).min(1.0)
                    } else {
                        0.0
                    };
                }
                c
            }
            OpKind::Rbind => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = DmSynopsis::zeros(a.nrows + b.nrows, a.ncols, self.block);
                for bi in 0..c.grid_rows {
                    let (r0, r1) = (bi * self.block, bi * self.block + c.block_rows(bi));
                    for bj in 0..c.grid_cols {
                        let (c0, c1) = (bj * self.block, bj * self.block + c.block_cols(bj));
                        // Split the output rectangle at the A/B row boundary.
                        let mut nnz = 0.0;
                        if r0 < a.nrows {
                            nnz += a.expected_nnz_in_rect(r0, r1.min(a.nrows), c0, c1);
                        }
                        if r1 > a.nrows {
                            nnz += b.expected_nnz_in_rect(
                                r0.max(a.nrows) - a.nrows,
                                r1 - a.nrows,
                                c0,
                                c1,
                            );
                        }
                        let cells = (r1 - r0) as f64 * (c1 - c0) as f64;
                        c.dens[bi * c.grid_cols + bj] = if cells > 0.0 { nnz / cells } else { 0.0 };
                    }
                }
                c
            }
            OpKind::Cbind => {
                let b = self.unwrap(inputs, 1)?;
                let mut c = DmSynopsis::zeros(a.nrows, a.ncols + b.ncols, self.block);
                for bi in 0..c.grid_rows {
                    let (r0, r1) = (bi * self.block, bi * self.block + c.block_rows(bi));
                    for bj in 0..c.grid_cols {
                        let (c0, c1) = (bj * self.block, bj * self.block + c.block_cols(bj));
                        let mut nnz = 0.0;
                        if c0 < a.ncols {
                            nnz += a.expected_nnz_in_rect(r0, r1, c0, c1.min(a.ncols));
                        }
                        if c1 > a.ncols {
                            nnz += b.expected_nnz_in_rect(
                                r0,
                                r1,
                                c0.max(a.ncols) - a.ncols,
                                c1 - a.ncols,
                            );
                        }
                        let cells = (r1 - r0) as f64 * (c1 - c0) as f64;
                        c.dens[bi * c.grid_cols + bj] = if cells > 0.0 { nnz / cells } else { 0.0 };
                    }
                }
                c
            }
            OpKind::Neq0 => a.clone(),
            OpKind::Eq0 => {
                let mut c = a.clone();
                for d in &mut c.dens {
                    *d = 1.0 - *d;
                }
                c
            }
        };
        Ok(out)
    }
}

impl SparsityEstimator for DensityMapEstimator {
    fn cache_key(&self) -> String {
        format!("{}:block={}", self.name(), self.block)
    }

    fn name(&self) -> &'static str {
        "DMap"
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::DensityMap(DmSynopsis::from_matrix(m, self.block)))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        Ok(self.apply(op, inputs)?.sparsity())
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        Ok(Synopsis::DensityMap(self.apply(op, inputs)?))
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(m: &CsrMatrix, block: usize) -> Synopsis {
        Synopsis::DensityMap(DmSynopsis::from_matrix(m, block))
    }

    /// The paper's §2.2 example: a 200x100 matrix A with 50 non-zeros in a
    /// single column (rows 0..50) times a dense 100x100 matrix B. True nnz
    /// is 5,000; the density map estimates 4,429 / 3,942 / 3,179 for block
    /// sizes 200 / 100 / 50.
    #[test]
    fn paper_block_size_anomaly_numbers() {
        let a = CsrMatrix::from_triples(200, 100, (0..50).map(|i| (i, 0usize, 1.0))).unwrap();
        let mut r = rng(1);
        let b = gen::rand_dense(&mut r, 100, 100);
        for (block, expect) in [(200, 4429.0), (100, 3942.0), (50, 3179.0)] {
            let e = DensityMapEstimator::with_block(block);
            let s = e
                .estimate(&OpKind::MatMul, &[&syn(&a, block), &syn(&b, block)])
                .unwrap();
            let nnz = s * 200.0 * 100.0;
            assert!(
                (nnz - expect).abs() < 1.0,
                "block {block}: estimated {nnz}, paper says {expect}"
            );
        }
    }

    #[test]
    fn block_1_equals_exact_bitset_result() {
        // E_dm with b = 1 degenerates to the exact boolean product.
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 20, 15, 0.15);
        let b = gen::rand_uniform(&mut r, 15, 18, 0.2);
        let e = DensityMapEstimator::with_block(1);
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&a, 1), &syn(&b, 1)])
            .unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        assert!((est - truth).abs() < 1e-9, "est {est} truth {truth}");
    }

    #[test]
    fn huge_block_equals_meta_ac() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 64, 48, 0.05);
        let b = gen::rand_uniform(&mut r, 48, 32, 0.1);
        let block = 64; // covers each matrix with a single block
        let e = DensityMapEstimator::with_block(block);
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&a, block), &syn(&b, block)])
            .unwrap();
        let expect = crate::eac(a.sparsity(), b.sparsity(), 48.0);
        assert!((est - expect).abs() < 1e-12);
    }

    #[test]
    fn build_preserves_sparsity() {
        let mut r = rng(4);
        let m = gen::rand_uniform(&mut r, 100, 70, 0.07);
        let dm = DmSynopsis::from_matrix(&m, 16);
        assert!((dm.sparsity() - m.sparsity()).abs() < 1e-12);
        assert!((dm.nnz() - m.nnz() as f64).abs() < 1e-9);
    }

    #[test]
    fn elementwise_and_complement() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 40, 40, 0.2);
        let b = gen::rand_uniform(&mut r, 40, 40, 0.3);
        let e = DensityMapEstimator::with_block(8);
        let add = e
            .estimate(&OpKind::EwAdd, &[&syn(&a, 8), &syn(&b, 8)])
            .unwrap();
        let truth = ops::ew_add(&a, &b).unwrap().sparsity();
        assert!((add - truth).abs() < 0.05);
        let z = e.estimate(&OpKind::Eq0, &[&syn(&a, 8)]).unwrap();
        assert!((z - (1.0 - a.sparsity())).abs() < 1e-12);
    }

    #[test]
    fn transpose_and_reshape_preserve_sparsity() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 30, 50, 0.12);
        let e = DensityMapEstimator::with_block(16);
        let t = e.propagate(&OpKind::Transpose, &[&syn(&a, 16)]).unwrap();
        assert_eq!(t.shape(), (50, 30));
        assert!((t.sparsity() - a.sparsity()).abs() < 1e-12);
        let rs = e
            .propagate(&OpKind::Reshape { rows: 50, cols: 30 }, &[&syn(&a, 16)])
            .unwrap();
        assert!((rs.sparsity() - a.sparsity()).abs() < 1e-9);
    }

    #[test]
    fn rbind_preserves_total_nnz() {
        let mut r = rng(7);
        let a = gen::rand_uniform(&mut r, 19, 30, 0.2); // 19 not a block multiple
        let b = gen::rand_uniform(&mut r, 23, 30, 0.1);
        let e = DensityMapEstimator::with_block(8);
        let rb = e
            .propagate(&OpKind::Rbind, &[&syn(&a, 8), &syn(&b, 8)])
            .unwrap();
        let truth = ops::rbind(&a, &b).unwrap();
        assert!((rb.sparsity() - truth.sparsity()).abs() < 1e-9);
        let cb = e
            .propagate(
                &OpKind::Cbind,
                &[
                    &syn(&a, 8),
                    &syn(&gen::rand_uniform(&mut r, 19, 11, 0.3), 8),
                ],
            )
            .unwrap();
        assert_eq!(cb.shape(), (19, 41));
    }

    /// The zero-skip sparse walk (and its threaded variant) must reproduce
    /// the dense complement-product triple loop bit for bit: skipped
    /// A-blocks are exact `1.0` factors, and surviving terms keep their
    /// ascending-`bk` fold order per output cell.
    #[test]
    fn zero_skip_matmul_bit_identical_to_dense_reference() {
        let mut r = rng(9);
        for sparsity in [0.0, 0.02, 0.3] {
            let a = gen::rand_uniform(&mut r, 61, 47, sparsity);
            let b = gen::rand_uniform(&mut r, 47, 53, sparsity * 1.5);
            let block = 4;
            let (da, db) = (
                DmSynopsis::from_matrix(&a, block),
                DmSynopsis::from_matrix(&b, block),
            );
            // Dense reference: the unskipped triple loop in the same
            // complement-product realization of Eq. 4 the estimator uses.
            let mut reference = DmSynopsis::zeros(da.nrows, db.ncols, block);
            for bi in 0..da.grid_rows {
                for bj in 0..db.grid_cols {
                    let (mut q_full, mut q_edge, mut edge_n) = (1.0f64, 1.0f64, 0usize);
                    for bk in 0..da.grid_cols {
                        let n = da.block_cols(bk);
                        let v = (da.density(bi, bk) * db.density(bk, bj)).clamp(0.0, 1.0);
                        if n == block {
                            q_full *= 1.0 - v;
                        } else {
                            edge_n = n;
                            q_edge *= 1.0 - v;
                        }
                    }
                    let q = q_full.powi(block as i32) * q_edge.powi(edge_n as i32);
                    reference.dens[bi * reference.grid_cols + bj] = (1.0 - q).clamp(0.0, 1.0);
                }
            }
            let (sa, sb) = (Synopsis::DensityMap(da), Synopsis::DensityMap(db));
            for threads in [1usize, 2, 8] {
                let e = DensityMapEstimator::with_block(block).with_threads(threads);
                let got = e.propagate(&OpKind::MatMul, &[&sa, &sb]).unwrap();
                let Synopsis::DensityMap(got) = got else {
                    panic!("expected a density map");
                };
                for (g, r) in got.dens.iter().zip(&reference.dens) {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "sparsity={sparsity} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn support_marginals_track_the_grid() {
        let mut m = DmSynopsis::zeros(10, 10, 4);
        assert!(m.row_support().iter().all(|r| r.is_empty()));
        m.set_density(1, 2, 0.5);
        assert_eq!(m.row_support()[1], vec![2]);
        m.set_density(1, 2, 0.0); // invalidated and recomputed
        assert!(m.row_support()[1].is_empty());
        m.set_density(2, 0, 0.25);
        assert_eq!(m.clone().row_support()[2], vec![0]);
    }

    #[test]
    fn fails_to_capture_column_skew_with_coarse_blocks() {
        // B2.2-style: 54 columns where a 256-block cannot separate dense
        // from ultra-sparse columns — the motivation for MNC (Fig. 11(c)).
        let _ = rng(8);
        // 10 dense columns, 44 nearly-empty columns.
        let mut triples = Vec::new();
        for i in 0..200usize {
            for j in 0..10usize {
                triples.push((i, j, 1.0));
            }
        }
        triples.push((0, 53, 1.0));
        let x = CsrMatrix::from_triples(200, 54, triples).unwrap();
        let p = gen::col_projection(54, 44, 10); // select sparse columns
        let e = DensityMapEstimator::with_block(256);
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&x, 256), &syn(&p, 256)])
            .unwrap();
        let truth = ops::bool_matmul(&x, &p).unwrap().sparsity();
        // One block covers everything: the estimate is far from the truth.
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel > 5.0, "expected a large error, got {rel}");
    }
}
