//! Adapter exposing the MNC sketch (the [`mnc_core`] crate) through the
//! common [`SparsityEstimator`] trait, including the *MNC Basic* ablation.

use std::sync::{Arc, Mutex};

use mnc_core::{MncConfig, MncSketch, ScratchArena, SplitMix64};
use mnc_matrix::CsrMatrix;

use crate::{OpKind, Result, SparsityEstimator, Synopsis};

/// Synopsis wrapper around [`MncSketch`].
#[derive(Debug, Clone)]
pub struct MncSynopsis {
    /// The wrapped sketch.
    pub sketch: MncSketch,
}

/// The MNC estimator (Sections 3–4 of the paper).
#[derive(Debug)]
pub struct MncEstimator {
    name: &'static str,
    cfg: MncConfig,
    /// Worker threads for leaf sketch construction (1 = sequential). Kept
    /// out of [`MncConfig`] on purpose: the parallel build is bit-identical
    /// to the sequential one, so the thread count must not perturb cache
    /// keys or results.
    build_threads: usize,
    /// Internal generator for probabilistic rounding during propagation;
    /// deterministic given the configured seed and call sequence. Behind a
    /// [`Mutex`] (not a `RefCell`) so the estimator is [`Sync`] and can be
    /// shared by parallel DAG walks — which are only enabled when rounding
    /// is deterministic, so the lock is never contended on hot paths.
    rng: Mutex<SplitMix64>,
    /// Route propagation through the persistent scratch arena below. Kept
    /// out of [`MncConfig`] and the cache key because the arena-backed path
    /// is bit-identical to the allocating one.
    use_arena: bool,
    /// Persistent pool of count-vector buffers reused across `propagate`
    /// calls (see [`mnc_core::ScratchArena`]).
    scratch: Mutex<ScratchArena>,
}

impl Default for MncEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MncEstimator {
    /// Full MNC: extended count vectors + Theorem 3.2 bounds.
    pub fn new() -> Self {
        Self::with_config("MNC", MncConfig::default())
    }

    /// *MNC Basic*: count vectors only (the paper's ablation series).
    pub fn basic() -> Self {
        Self::with_config("MNC Basic", MncConfig::basic())
    }

    /// Custom configuration under a display name.
    pub fn with_config(name: &'static str, cfg: MncConfig) -> Self {
        MncEstimator {
            name,
            cfg,
            build_threads: 1,
            rng: Mutex::new(SplitMix64::new(cfg.seed)),
            use_arena: true,
            scratch: Mutex::new(ScratchArena::new()),
        }
    }

    /// Toggles the internal scratch arena (on by default). Estimates and
    /// propagated sketches are bit-identical either way; turning it off
    /// forces a fresh allocation per count vector, which the invariance
    /// tests and the allocation-tracking benchmarks exploit.
    pub fn with_arena(mut self, on: bool) -> Self {
        self.use_arena = on;
        self
    }

    /// Builds leaf sketches on `threads` scoped worker threads
    /// ([`MncSketch::build_parallel_with`]); the result is bit-identical to
    /// the sequential build.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MncConfig {
        &self.cfg
    }

    /// Unwraps every input to its sketch, rejecting foreign synopses.
    fn sketches<'a>(&self, inputs: &[&'a Synopsis]) -> Result<Vec<&'a MncSketch>> {
        inputs
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                crate::expect_synopsis!("MNC", Synopsis::Mnc, inputs, idx).map(|s| &s.sketch)
            })
            .collect()
    }
}

impl SparsityEstimator for MncEstimator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Mnc(MncSynopsis {
            sketch: MncSketch::build_parallel_with(m, self.cfg.use_extended, self.build_threads),
        }))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        MncSketch::estimate_with(op, &self.sketches(inputs)?, &self.cfg)
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        let sketches = self.sketches(inputs)?;
        let sketch = if self.cfg.probabilistic_rounding {
            // Rounding draws must keep their global call sequence, so the
            // shared generator stays locked across the whole propagation.
            let rng = &mut *self.rng.lock().expect("rng lock");
            if self.use_arena {
                let arena = &mut *self.scratch.lock().expect("scratch lock");
                MncSketch::propagate_in(op, &sketches, &self.cfg, rng, arena)?
            } else {
                MncSketch::propagate_with(op, &sketches, &self.cfg, rng)?
            }
        } else {
            // Deterministic rounding never draws (`round_count` is the only
            // consumer), so a fresh seeded generator is indistinguishable
            // from the shared one and parallel propagates skip the lock.
            // The scratch arena is leased opportunistically: a contended
            // lock falls back to the (bit-identical) allocating path
            // instead of serializing the workers.
            let mut rng = SplitMix64::new(self.cfg.seed);
            match self.scratch.try_lock() {
                Ok(mut arena) if self.use_arena => {
                    MncSketch::propagate_in(op, &sketches, &self.cfg, &mut rng, &mut arena)?
                }
                _ => MncSketch::propagate_with(op, &sketches, &self.cfg, &mut rng)?,
            }
        };
        Ok(Synopsis::Mnc(MncSynopsis { sketch }))
    }

    fn propagate_scratch(
        &self,
        op: &OpKind,
        inputs: &[&Synopsis],
        arena: &mut ScratchArena,
    ) -> Result<Synopsis> {
        let sketches = self.sketches(inputs)?;
        let sketch = if self.cfg.probabilistic_rounding {
            let rng = &mut *self.rng.lock().expect("rng lock");
            MncSketch::propagate_in(op, &sketches, &self.cfg, rng, arena)?
        } else {
            let mut rng = SplitMix64::new(self.cfg.seed);
            MncSketch::propagate_in(op, &sketches, &self.cfg, &mut rng, arena)?
        };
        Ok(Synopsis::Mnc(MncSynopsis { sketch }))
    }

    fn order_invariant(&self) -> bool {
        // With probabilistic rounding off, propagation is a pure function
        // of its inputs; with it on, results depend on the shared
        // generator's draw sequence and the walk order must stay fixed.
        !self.cfg.probabilistic_rounding
    }

    fn as_sync(&self) -> Option<&(dyn SparsityEstimator + Sync)> {
        Some(self)
    }

    fn cache_key(&self) -> String {
        // Synopsis content depends on the extension vectors; rounding knobs
        // and the seed affect propagated (cached intermediate) sketches.
        format!(
            "{}:ext={},bounds={},prob={},seed={}",
            self.name,
            self.cfg.use_extended,
            self.cfg.use_bounds,
            self.cfg.probabilistic_rounding,
            self.cfg.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(e: &MncEstimator, m: &CsrMatrix) -> Synopsis {
        e.build(&Arc::new(m.clone())).unwrap()
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(MncEstimator::new().name(), "MNC");
        assert_eq!(MncEstimator::basic().name(), "MNC Basic");
    }

    #[test]
    fn basic_does_not_build_extended_vectors() {
        let mut r = rng(1);
        let m = gen::rand_uniform(&mut r, 40, 40, 0.1);
        let e = MncEstimator::basic();
        if let Synopsis::Mnc(s) = syn(&e, &m) {
            assert!(s.sketch.her.is_none() && s.sketch.hec.is_none());
        } else {
            panic!("expected MNC synopsis");
        }
    }

    #[test]
    fn adapter_matches_core_for_products() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 50, 40, 0.1);
        let b = gen::rand_uniform(&mut r, 40, 60, 0.08);
        let e = MncEstimator::new();
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&e, &a), &syn(&e, &b)])
            .unwrap();
        let core = MncSketch::estimate(
            &OpKind::MatMul,
            &[&MncSketch::build(&a), &MncSketch::build(&b)],
        )
        .unwrap();
        assert!((est - core).abs() < 1e-15);
    }

    #[test]
    fn all_ops_supported() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 12, 12, 0.2);
        let b = gen::rand_uniform(&mut r, 12, 12, 0.3);
        let v = gen::ones_vector(12);
        let e = MncEstimator::new();
        let (sa, sb, sv) = (syn(&e, &a), syn(&e, &b), syn(&e, &v));
        for (op, inputs) in [
            (OpKind::MatMul, vec![&sa, &sb]),
            (OpKind::EwAdd, vec![&sa, &sb]),
            (OpKind::EwMul, vec![&sa, &sb]),
            (OpKind::EwMax, vec![&sa, &sb]),
            (OpKind::EwMin, vec![&sa, &sb]),
            (OpKind::Transpose, vec![&sa]),
            (OpKind::Reshape { rows: 6, cols: 24 }, vec![&sa]),
            (OpKind::DiagV2M, vec![&sv]),
            (OpKind::DiagM2V, vec![&sa]),
            (OpKind::Rbind, vec![&sa, &sb]),
            (OpKind::Cbind, vec![&sa, &sb]),
            (OpKind::Neq0, vec![&sa]),
            (OpKind::Eq0, vec![&sa]),
        ] {
            let est = e.estimate(&op, &inputs).expect("estimate");
            assert!((0.0..=1.0).contains(&est), "{op:?} -> {est}");
            let prop = e.propagate(&op, &inputs).expect("propagate");
            assert_eq!(
                prop.shape(),
                op.output_shape(&inputs.iter().map(|s| s.shape()).collect::<Vec<_>>())
                    .unwrap()
            );
        }
    }

    #[test]
    fn max_matches_add_and_min_matches_mul_under_a1() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 20, 20, 0.3);
        let b = gen::rand_uniform(&mut r, 20, 20, 0.2);
        let e = MncEstimator::new();
        let (sa, sb) = (syn(&e, &a), syn(&e, &b));
        let add = e.estimate(&OpKind::EwAdd, &[&sa, &sb]).unwrap();
        let max = e.estimate(&OpKind::EwMax, &[&sa, &sb]).unwrap();
        assert_eq!(add, max);
        let mul = e.estimate(&OpKind::EwMul, &[&sa, &sb]).unwrap();
        let min = e.estimate(&OpKind::EwMin, &[&sa, &sb]).unwrap();
        assert_eq!(mul, min);
        // And the estimates track the exact kernels.
        let t_max = ops::ew_max(&a, &b).unwrap().sparsity();
        assert!((max - t_max).abs() < 0.06, "max {max} truth {t_max}");
    }

    #[test]
    fn arena_on_and_off_propagate_bit_identically() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 40, 30, 0.12);
        let b = gen::rand_uniform(&mut r, 30, 40, 0.09);
        // Chain a few ops so the arena's pooled buffers actually get reused
        // (later ops lease what earlier intermediates released).
        let run = |e: &MncEstimator| -> MncSketch {
            let mut cur = e
                .propagate(&OpKind::MatMul, &[&syn(e, &a), &syn(e, &b)])
                .unwrap();
            for op in [OpKind::Transpose, OpKind::Eq0, OpKind::Neq0] {
                cur = e.propagate(&op, &[&cur]).unwrap();
            }
            let Synopsis::Mnc(s) = e.propagate(&OpKind::MatMul, &[&cur, &syn(e, &a)]).unwrap()
            else {
                panic!("expected MNC synopsis");
            };
            s.sketch
        };
        assert_eq!(
            run(&MncEstimator::new()),
            run(&MncEstimator::new().with_arena(false))
        );
    }

    #[test]
    fn chain_estimation_via_propagation() {
        // Scale & permute (B1.2/B1.3 flavour): sketches propagate exactly
        // through the diagonal product, keeping the chain estimate exact.
        let mut r = rng(4);
        let d = gen::scalar_diag(30, 2.0);
        let x = gen::rand_uniform(&mut r, 30, 20, 0.15);
        let e = MncEstimator::new();
        let mid = e
            .propagate(&OpKind::MatMul, &[&syn(&e, &d), &syn(&e, &x)])
            .unwrap();
        assert!((mid.sparsity() - x.sparsity()).abs() < 1e-12);
        let dx = ops::matmul(&d, &x).unwrap();
        assert!((mid.sparsity() - dx.sparsity()).abs() < 1e-12);
    }
}
