//! Adapter exposing the MNC sketch (the [`mnc_core`] crate) through the
//! common [`SparsityEstimator`] trait, including the *MNC Basic* ablation.

use std::cell::RefCell;
use std::sync::Arc;

use mnc_core::{
    estimate_cbind, estimate_diag_extract, estimate_diag_v2m, estimate_eq_zero, estimate_ew_add, estimate_ew_mul,
    estimate_matmul_with, estimate_neq_zero, estimate_rbind, estimate_reshape,
    estimate_transpose, propagate_cbind, propagate_diag_v2m, propagate_eq_zero,
    propagate_ew_add, propagate_diag_extract, propagate_ew_mul, propagate_matmul, propagate_neq_zero, propagate_rbind,
    propagate_reshape, propagate_transpose, MncConfig, MncSketch, SplitMix64,
};
use mnc_matrix::CsrMatrix;

use crate::{OpKind, Result, SparsityEstimator, Synopsis};

/// Synopsis wrapper around [`MncSketch`].
#[derive(Debug, Clone)]
pub struct MncSynopsis {
    /// The wrapped sketch.
    pub sketch: MncSketch,
}

/// The MNC estimator (Sections 3–4 of the paper).
#[derive(Debug)]
pub struct MncEstimator {
    name: &'static str,
    cfg: MncConfig,
    /// Internal generator for probabilistic rounding during propagation;
    /// deterministic given the configured seed and call sequence.
    rng: RefCell<SplitMix64>,
}

impl Default for MncEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MncEstimator {
    /// Full MNC: extended count vectors + Theorem 3.2 bounds.
    pub fn new() -> Self {
        Self::with_config("MNC", MncConfig::default())
    }

    /// *MNC Basic*: count vectors only (the paper's ablation series).
    pub fn basic() -> Self {
        Self::with_config("MNC Basic", MncConfig::basic())
    }

    /// Custom configuration under a display name.
    pub fn with_config(name: &'static str, cfg: MncConfig) -> Self {
        MncEstimator {
            name,
            cfg,
            rng: RefCell::new(SplitMix64::new(cfg.seed)),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MncConfig {
        &self.cfg
    }

    fn unwrap<'a>(&self, inputs: &[&'a Synopsis], idx: usize) -> Result<&'a MncSynopsis> {
        crate::expect_synopsis!("MNC", Synopsis::Mnc, inputs, idx)
    }
}

impl SparsityEstimator for MncEstimator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn build(&self, m: &Arc<CsrMatrix>) -> Result<Synopsis> {
        Ok(Synopsis::Mnc(MncSynopsis {
            sketch: MncSketch::build_with(m, self.cfg.use_extended),
        }))
    }

    fn estimate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<f64> {
        let a = &self.unwrap(inputs, 0)?.sketch;
        let s = match op {
            OpKind::MatMul => {
                let b = &self.unwrap(inputs, 1)?.sketch;
                estimate_matmul_with(a, b, &self.cfg)
            }
            // Under A1, max is pattern-equivalent to + and min to ⊙.
            OpKind::EwAdd | OpKind::EwMax => {
                estimate_ew_add(a, &self.unwrap(inputs, 1)?.sketch)
            }
            OpKind::EwMul | OpKind::EwMin => {
                estimate_ew_mul(a, &self.unwrap(inputs, 1)?.sketch)
            }
            OpKind::Transpose => estimate_transpose(a),
            OpKind::Reshape { .. } => estimate_reshape(a),
            OpKind::DiagV2M => estimate_diag_v2m(a),
            OpKind::DiagM2V => estimate_diag_extract(a),
            OpKind::Rbind => estimate_rbind(a, &self.unwrap(inputs, 1)?.sketch),
            OpKind::Cbind => estimate_cbind(a, &self.unwrap(inputs, 1)?.sketch),
            OpKind::Neq0 => estimate_neq_zero(a),
            OpKind::Eq0 => estimate_eq_zero(a),
        };
        Ok(s)
    }

    fn propagate(&self, op: &OpKind, inputs: &[&Synopsis]) -> Result<Synopsis> {
        let a = &self.unwrap(inputs, 0)?.sketch;
        let rng = &mut *self.rng.borrow_mut();
        let sketch = match op {
            OpKind::MatMul => {
                propagate_matmul(a, &self.unwrap(inputs, 1)?.sketch, &self.cfg, rng)
            }
            OpKind::EwAdd | OpKind::EwMax => {
                propagate_ew_add(a, &self.unwrap(inputs, 1)?.sketch, &self.cfg, rng)
            }
            OpKind::EwMul | OpKind::EwMin => {
                propagate_ew_mul(a, &self.unwrap(inputs, 1)?.sketch, &self.cfg, rng)
            }
            OpKind::Transpose => propagate_transpose(a),
            OpKind::Reshape { rows, cols } => {
                propagate_reshape(a, *rows, *cols, &self.cfg, rng)
            }
            OpKind::DiagV2M => propagate_diag_v2m(a),
            OpKind::DiagM2V => propagate_diag_extract(a, &self.cfg, rng),
            OpKind::Rbind => propagate_rbind(a, &self.unwrap(inputs, 1)?.sketch),
            OpKind::Cbind => propagate_cbind(a, &self.unwrap(inputs, 1)?.sketch),
            OpKind::Neq0 => propagate_neq_zero(a),
            OpKind::Eq0 => propagate_eq_zero(a),
        };
        Ok(Synopsis::Mnc(MncSynopsis { sketch }))
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn syn(e: &MncEstimator, m: &CsrMatrix) -> Synopsis {
        e.build(&Arc::new(m.clone())).unwrap()
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(MncEstimator::new().name(), "MNC");
        assert_eq!(MncEstimator::basic().name(), "MNC Basic");
    }

    #[test]
    fn basic_does_not_build_extended_vectors() {
        let mut r = rng(1);
        let m = gen::rand_uniform(&mut r, 40, 40, 0.1);
        let e = MncEstimator::basic();
        if let Synopsis::Mnc(s) = syn(&e, &m) {
            assert!(s.sketch.her.is_none() && s.sketch.hec.is_none());
        } else {
            panic!("expected MNC synopsis");
        }
    }

    #[test]
    fn adapter_matches_core_for_products() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 50, 40, 0.1);
        let b = gen::rand_uniform(&mut r, 40, 60, 0.08);
        let e = MncEstimator::new();
        let est = e
            .estimate(&OpKind::MatMul, &[&syn(&e, &a), &syn(&e, &b)])
            .unwrap();
        let core = mnc_core::estimate_matmul(&MncSketch::build(&a), &MncSketch::build(&b));
        assert!((est - core).abs() < 1e-15);
    }

    #[test]
    fn all_ops_supported() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 12, 12, 0.2);
        let b = gen::rand_uniform(&mut r, 12, 12, 0.3);
        let v = gen::ones_vector(12);
        let e = MncEstimator::new();
        let (sa, sb, sv) = (syn(&e, &a), syn(&e, &b), syn(&e, &v));
        for (op, inputs) in [
            (OpKind::MatMul, vec![&sa, &sb]),
            (OpKind::EwAdd, vec![&sa, &sb]),
            (OpKind::EwMul, vec![&sa, &sb]),
            (OpKind::EwMax, vec![&sa, &sb]),
            (OpKind::EwMin, vec![&sa, &sb]),
            (OpKind::Transpose, vec![&sa]),
            (OpKind::Reshape { rows: 6, cols: 24 }, vec![&sa]),
            (OpKind::DiagV2M, vec![&sv]),
            (OpKind::DiagM2V, vec![&sa]),
            (OpKind::Rbind, vec![&sa, &sb]),
            (OpKind::Cbind, vec![&sa, &sb]),
            (OpKind::Neq0, vec![&sa]),
            (OpKind::Eq0, vec![&sa]),
        ] {
            let est = e.estimate(&op, &inputs).expect("estimate");
            assert!((0.0..=1.0).contains(&est), "{op:?} -> {est}");
            let prop = e.propagate(&op, &inputs).expect("propagate");
            assert_eq!(
                prop.shape(),
                op.output_shape(&inputs.iter().map(|s| s.shape()).collect::<Vec<_>>())
                    .unwrap()
            );
        }
    }

    #[test]
    fn max_matches_add_and_min_matches_mul_under_a1() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 20, 20, 0.3);
        let b = gen::rand_uniform(&mut r, 20, 20, 0.2);
        let e = MncEstimator::new();
        let (sa, sb) = (syn(&e, &a), syn(&e, &b));
        let add = e.estimate(&OpKind::EwAdd, &[&sa, &sb]).unwrap();
        let max = e.estimate(&OpKind::EwMax, &[&sa, &sb]).unwrap();
        assert_eq!(add, max);
        let mul = e.estimate(&OpKind::EwMul, &[&sa, &sb]).unwrap();
        let min = e.estimate(&OpKind::EwMin, &[&sa, &sb]).unwrap();
        assert_eq!(mul, min);
        // And the estimates track the exact kernels.
        let t_max = ops::ew_max(&a, &b).unwrap().sparsity();
        assert!((max - t_max).abs() < 0.06, "max {max} truth {t_max}");
    }

    #[test]
    fn chain_estimation_via_propagation() {
        // Scale & permute (B1.2/B1.3 flavour): sketches propagate exactly
        // through the diagonal product, keeping the chain estimate exact.
        let mut r = rng(4);
        let d = gen::scalar_diag(30, 2.0);
        let x = gen::rand_uniform(&mut r, 30, 20, 0.15);
        let e = MncEstimator::new();
        let mid = e
            .propagate(&OpKind::MatMul, &[&syn(&e, &d), &syn(&e, &x)])
            .unwrap();
        assert!((mid.sparsity() - x.sparsity()).abs() < 1e-12);
        let dx = ops::matmul(&d, &x).unwrap();
        assert!((mid.sparsity() - dx.sparsity()).abs() < 1e-12);
    }
}
