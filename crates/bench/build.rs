//! Captures the environment fingerprint at compile time: the workspace has
//! no build dependencies, so rustc version and git sha are shelled out here
//! and handed to the crate as env vars (`EnvInfo` reads them).

use std::process::Command;

fn capture(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    println!(
        "cargo:rustc-env=MNC_RUSTC_VERSION={}",
        capture(&rustc, &["--version"])
    );
    println!(
        "cargo:rustc-env=MNC_GIT_SHA={}",
        capture("git", &["rev-parse", "--short=12", "HEAD"])
    );
    // Re-run when HEAD moves so the sha stays honest. HEAD itself is
    // usually a symref ("ref: refs/heads/main") whose *contents* don't
    // change on commit — the new commit lands in the branch ref file (or
    // packed-refs after a gc), so those must be watched too or the baked
    // sha silently pins to whatever commit first compiled this crate.
    let dir = capture("git", &["rev-parse", "--git-dir"]);
    if dir != "unknown" {
        println!("cargo:rerun-if-changed={dir}/HEAD");
        let head_ref = capture("git", &["symbolic-ref", "-q", "HEAD"]);
        if head_ref != "unknown" {
            println!("cargo:rerun-if-changed={dir}/{head_ref}");
        }
        println!("cargo:rerun-if-changed={dir}/packed-refs");
    }
}
