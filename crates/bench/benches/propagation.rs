//! Criterion benches for sketch propagation and the chain optimizer —
//! the costs that matter during compilation (re-optimization loops call
//! these, not construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnc_core::propagate::propagate_matmul;
use mnc_core::{MncConfig, MncSketch, SplitMix64};
use mnc_expr::{dense_chain_order, plan_cost_sketched, random_plan, sparse_chain_order, PlanTree};
use mnc_matrix::gen;
use rand::SeedableRng;

fn sketches(n_mats: usize, dim: usize, s: f64) -> Vec<MncSketch> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    (0..n_mats)
        .map(|_| MncSketch::build(&gen::rand_uniform(&mut rng, dim, dim, s)))
        .collect()
}

fn bench_propagate_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagate_matmul");
    for &dim in &[256usize, 1024, 4096] {
        let s = sketches(2, dim, 0.05);
        let cfg = MncConfig::default();
        g.bench_with_input(BenchmarkId::from_parameter(dim), &s, |b, s| {
            let mut rng = SplitMix64::new(3);
            b.iter(|| propagate_matmul(&s[0], &s[1], &cfg, &mut rng));
        });
    }
    g.finish();
}

fn bench_estimate_vs_propagate(c: &mut Criterion) {
    let s = sketches(2, 2048, 0.05);
    let cfg = MncConfig::default();
    c.bench_function("estimate_only_2k", |b| {
        b.iter(|| mnc_core::estimate::estimate_matmul_with(&s[0], &s[1], &cfg));
    });
}

fn bench_chain_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_optimizer");
    for &n in &[5usize, 10, 20] {
        let s = sketches(n, 512, 0.05);
        let cfg = MncConfig::default();
        g.bench_with_input(BenchmarkId::new("sparse_dp", n), &s, |b, s| {
            b.iter(|| sparse_chain_order(s, &cfg));
        });
        let dims: Vec<usize> = vec![512; n + 1];
        g.bench_with_input(BenchmarkId::new("dense_dp", n), &dims, |b, d| {
            b.iter(|| dense_chain_order(d));
        });
    }
    g.finish();
}

fn bench_plan_scoring(c: &mut Criterion) {
    let s = sketches(10, 512, 0.05);
    let cfg = MncConfig::default();
    let mut rng = SplitMix64::new(5);
    let plans: Vec<PlanTree> = (0..32).map(|_| random_plan(10, &mut rng)).collect();
    c.bench_function("score_32_random_plans_n10", |b| {
        b.iter(|| {
            plans
                .iter()
                .map(|p| plan_cost_sketched(&s, p, &cfg))
                .sum::<f64>()
        });
    });
}

criterion_group!(
    benches,
    bench_propagate_matmul,
    bench_estimate_vs_propagate,
    bench_chain_dp,
    bench_plan_scoring
);
criterion_main!(benches);
