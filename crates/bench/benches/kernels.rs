//! Criterion benches comparing every kernel against its scalar reference —
//! the allocation-free fused paths vs. the original collect()-chain loops —
//! so kernel regressions are visible outside the `mnc-perf --baseline` gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnc_kernels::{scalar, ScratchArena};

fn counts(seed: u64, len: usize, max: u32) -> Vec<u32> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as u32) % (max + 1)
        })
        .collect()
}

fn words(seed: u64, len: usize) -> Vec<u64> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        })
        .collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    for &len in &[256usize, 4096, 65536] {
        let x = counts(1, len, 1000);
        let y = counts(2, len, 1000);
        g.bench_with_input(BenchmarkId::new("scalar", len), &len, |b, _| {
            b.iter(|| scalar::dot_u32(&x, &y));
        });
        g.bench_with_input(BenchmarkId::new("kernel", len), &len, |b, _| {
            b.iter(|| mnc_kernels::dot_u32(&x, &y));
        });
    }
    g.finish();
}

fn bench_combinators(c: &mut Criterion) {
    let mut g = c.benchmark_group("combine");
    let len = 4096;
    let x = counts(3, len, 1000);
    let y = counts(4, len, 1000);
    g.bench_function("zip_add/scalar_collect_plus_meta", |b| {
        b.iter(|| {
            let v = scalar::zip_add(&x, &y);
            scalar::meta_scan(&v, 500)
        });
    });
    let mut arena = ScratchArena::new();
    let mut out = arena.take_u32(len);
    g.bench_function("zip_add/kernel_fused", |b| {
        b.iter(|| mnc_kernels::zip_add_into(&x, &y, 500, &mut out));
    });
    g.bench_function("scale_round/scalar_collect", |b| {
        b.iter(|| scalar::scale_round(&x, 1e5, 1000, |v| v.round() as u64));
    });
    g.bench_function("scale_round/kernel_fused", |b| {
        b.iter(|| {
            mnc_kernels::scale_round_into(&x, 1e5, 1000, 500, |v| v.round() as u64, &mut out)
        });
    });
    g.finish();
}

fn bench_popcount(c: &mut Criterion) {
    let mut g = c.benchmark_group("popcount");
    for &len in &[512usize, 16384] {
        let w = words(5, len);
        g.bench_with_input(BenchmarkId::new("scalar", len), &len, |b, _| {
            b.iter(|| scalar::popcount(&w));
        });
        g.bench_with_input(BenchmarkId::new("kernel", len), &len, |b, _| {
            b.iter(|| mnc_kernels::popcount(&w));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dot, bench_combinators, bench_popcount);
criterion_main!(benches);
