//! Criterion micro-benchmarks: synopsis construction and product estimation
//! per estimator (the micro view behind Figures 7/8).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnc_estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, LayeredGraphEstimator,
    MetaAcEstimator, MncEstimator, OpKind, SparsityEstimator,
};
use mnc_matrix::gen;
use rand::SeedableRng;

fn inputs(d: usize, s: f64) -> (Arc<mnc_matrix::CsrMatrix>, Arc<mnc_matrix::CsrMatrix>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    (
        Arc::new(gen::rand_uniform(&mut rng, d, d, s)),
        Arc::new(gen::rand_uniform(&mut rng, d, d, s)),
    )
}

fn estimators() -> Vec<Box<dyn SparsityEstimator>> {
    vec![
        Box::new(MetaAcEstimator),
        Box::new(BiasedSamplingEstimator::default()),
        Box::new(MncEstimator::new()),
        Box::new(MncEstimator::basic()),
        Box::new(DensityMapEstimator::default()),
        Box::new(BitsetEstimator::default()),
        Box::new(LayeredGraphEstimator::default()),
    ]
}

fn bench_construction(c: &mut Criterion) {
    let (a, _) = inputs(1024, 0.05);
    let mut g = c.benchmark_group("construction_1k_s0.05");
    for est in estimators() {
        g.bench_with_input(BenchmarkId::from_parameter(est.name()), &a, |b, a| {
            b.iter(|| est.build(a).expect("builds"));
        });
    }
    g.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let (a, b) = inputs(1024, 0.05);
    let mut g = c.benchmark_group("estimate_mm_1k_s0.05");
    for est in estimators() {
        let sa = est.build(&a).expect("builds");
        let sb = est.build(&b).expect("builds");
        g.bench_function(BenchmarkId::from_parameter(est.name()), |bench| {
            bench.iter(|| {
                est.estimate(&OpKind::MatMul, &[&sa, &sb])
                    .expect("estimates")
            });
        });
    }
    g.finish();
}

fn bench_mnc_sketch_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("mnc_sketch_build");
    for &s in &[0.001, 0.01, 0.1] {
        let (a, _) = inputs(2048, s);
        g.bench_with_input(BenchmarkId::from_parameter(s), &a, |b, a| {
            b.iter(|| mnc_core::MncSketch::build(a));
        });
    }
    g.finish();
}

fn bench_exact_matmul(c: &mut Criterion) {
    let (a, b) = inputs(1024, 0.05);
    c.bench_function("exact_spgemm_1k_s0.05", |bench| {
        bench.iter(|| mnc_matrix::ops::matmul(&a, &b).expect("shapes agree"));
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_estimation,
    bench_mnc_sketch_build,
    bench_exact_matmul
);
criterion_main!(benches);
