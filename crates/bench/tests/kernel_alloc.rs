//! Allocation-reduction guarantee of the scratch arena: a matmul
//! propagation chain that leases its count-vector buffers from a
//! [`ScratchArena`] and recycles retired intermediates must make at most
//! half the allocations of the same chain allocating fresh vectors per
//! step — and produce bit-identical sketches.
//!
//! The allocation counters only move under `--features alloc-track` (CI
//! runs `cargo test -p mnc-bench --features alloc-track`); in untracked
//! builds the test still verifies bit-identity and the reduction assertion
//! holds vacuously (0 vs 0).

use std::sync::Arc;

use mnc_core::propagate::{propagate_matmul, propagate_matmul_in};
use mnc_core::{MncConfig, MncSketch, ScratchArena, SplitMix64};
use mnc_matrix::{gen, CsrMatrix};
use mnc_obs::alloc::{tracking_active, AllocScope};
use rand::SeedableRng;

/// A chain of square sparse matrices whose sketches propagate end to end.
fn chain_sketches(d: usize, k: usize) -> Vec<MncSketch> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA110C);
    (0..k)
        .map(|i| {
            let s = 0.02 + 0.01 * (i % 3) as f64;
            let m: Arc<CsrMatrix> = Arc::new(gen::rand_uniform(&mut rng, d, d, s));
            MncSketch::build(&m)
        })
        .collect()
}

/// Folds the chain through the arena-backed path, recycling each retired
/// intermediate, and reports the sketch plus the allocation delta of the
/// propagation (sketch construction stays outside the scope).
fn fold_with_arena(
    sketches: &[MncSketch],
    cfg: &MncConfig,
    arena: &mut ScratchArena,
) -> (MncSketch, mnc_obs::alloc::AllocDelta) {
    let mut rng = SplitMix64::new(cfg.seed);
    let scope = AllocScope::start();
    let mut cur = propagate_matmul_in(&sketches[0], &sketches[1], cfg, &mut rng, arena);
    for s in &sketches[2..] {
        let next = propagate_matmul_in(&cur, s, cfg, &mut rng, arena);
        cur.recycle_into(arena);
        cur = next;
    }
    (cur, scope.measure())
}

/// The pre-arena shape: every step allocates fresh output vectors.
fn fold_allocating(
    sketches: &[MncSketch],
    cfg: &MncConfig,
) -> (MncSketch, mnc_obs::alloc::AllocDelta) {
    let mut rng = SplitMix64::new(cfg.seed);
    let scope = AllocScope::start();
    let mut cur = propagate_matmul(&sketches[0], &sketches[1], cfg, &mut rng);
    for s in &sketches[2..] {
        cur = propagate_matmul(&cur, s, cfg, &mut rng);
    }
    (cur, scope.measure())
}

#[test]
fn arena_halves_chain_allocations_and_keeps_bits() {
    let cfg = MncConfig::default();
    let sketches = chain_sketches(400, 8);

    // Warm the pool: the first pass leases fresh buffers; the measured
    // steady-state pass below must be served from recycled ones.
    let mut arena = ScratchArena::new();
    let (_, _) = fold_with_arena(&sketches, &cfg, &mut arena);

    let (pooled, pooled_delta) = fold_with_arena(&sketches, &cfg, &mut arena);
    let (fresh, fresh_delta) = fold_allocating(&sketches, &cfg);

    assert_eq!(
        pooled, fresh,
        "arena-backed propagation must be bit-identical to the allocating path"
    );

    if tracking_active() {
        assert!(
            fresh_delta.allocs > 0,
            "allocating path made no allocations — the baseline is meaningless"
        );
        assert!(
            pooled_delta.allocs * 2 <= fresh_delta.allocs,
            "arena chain made {} allocations vs {} without — less than a 50% reduction",
            pooled_delta.allocs,
            fresh_delta.allocs
        );
    } else {
        assert_eq!(pooled_delta.allocs, 0);
        assert_eq!(fresh_delta.allocs, 0);
    }
}
