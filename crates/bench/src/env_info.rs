//! The environment fingerprint shared by every JSON-emitting benchmark
//! (`cache_bench`, `mnc-perf`): enough context to judge whether two records
//! are comparable. EXPERIMENTS.md's 1-thread-container caveat becomes
//! machine-readable through `cpus`.

use mnc_obs::export::json_escape;

/// Environment fingerprint embedded in benchmark JSON records.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvInfo {
    /// Logical CPUs visible to the process.
    pub cpus: usize,
    /// `rustc --version` of the compiler that built the binary.
    pub rustc: String,
    /// Git sha the binary was built from (`unknown` outside a checkout).
    pub git_sha: String,
    /// Target triple baked in at compile time.
    pub os: String,
    /// `MNC_SCALE` knob the run used.
    pub scale: f64,
    /// `MNC_REPS` knob the run used.
    pub reps: usize,
    /// Whether the binary was built with allocation tracking.
    pub alloc_track: bool,
}

impl EnvInfo {
    /// Captures the fingerprint for a run with the given scale knobs.
    pub fn capture(scale: f64, reps: usize) -> EnvInfo {
        EnvInfo {
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rustc: env!("MNC_RUSTC_VERSION").to_string(),
            git_sha: env!("MNC_GIT_SHA").to_string(),
            os: format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH),
            scale,
            reps,
            alloc_track: mnc_obs::alloc::tracking_active(),
        }
    }

    /// The fingerprint as a JSON object (stable field set, append-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpus\": {}, \"rustc\": \"{}\", \"git_sha\": \"{}\", \
             \"os\": \"{}\", \"scale\": {}, \"reps\": {}, \"alloc_track\": {}}}",
            self.cpus,
            json_escape(&self.rustc),
            json_escape(&self.git_sha),
            json_escape(&self.os),
            self.scale,
            self.reps,
            self.alloc_track
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let env = EnvInfo::capture(0.5, 3);
        assert!(env.cpus >= 1);
        assert!(!env.rustc.is_empty());
        assert!(!env.git_sha.is_empty());
        assert!(env.os.contains('-'));
        assert_eq!(env.scale, 0.5);
        assert_eq!(env.reps, 3);
    }

    #[test]
    fn json_has_the_stable_fields() {
        let j = EnvInfo::capture(1.0, 20).to_json();
        for key in [
            "\"cpus\"",
            "\"rustc\"",
            "\"git_sha\"",
            "\"os\"",
            "\"scale\"",
            "\"reps\"",
            "\"alloc_track\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
