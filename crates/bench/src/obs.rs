//! Shared observability flags for the benchmark binaries:
//!
//! ```text
//! --trace <file>          write a Chrome trace_event JSON (chrome://tracing,
//!                         Perfetto) of every span in the run
//! --metrics <file>        write the metrics/accuracy report to a file
//! --obs-format <fmt>      table | jsonl | chrome | prom — format of the
//!                         report (stdout when no --metrics file is given)
//! ```
//!
//! Any of the three flags switches the run's recorder on; without them the
//! binaries keep the zero-overhead disabled recorder.

use std::io::Write as _;

use mnc_obs::{ObsFormat, Recorder};

/// Parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// `--trace <file>`: Chrome trace output path.
    pub trace: Option<String>,
    /// `--metrics <file>`: report output path.
    pub metrics: Option<String>,
    /// `--obs-format <fmt>` (default `table`).
    pub format: ObsFormat,
    /// Whether `--obs-format` was given explicitly (an explicit format with
    /// no `--metrics` file sends the report to stdout).
    pub format_explicit: bool,
}

/// Usage lines for the three flags, for the binaries' help text.
pub const OBS_USAGE: &str =
    "[--trace <file>] [--metrics <file>] [--obs-format table|jsonl|chrome|prom]";

impl ObsArgs {
    /// Extracts the observability flags from `args`, returning the parsed
    /// flags and the remaining (unconsumed) arguments.
    pub fn parse(args: &[String]) -> Result<(ObsArgs, Vec<String>), String> {
        let mut parsed = ObsArgs::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => {
                    parsed.trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
                }
                "--metrics" => {
                    parsed.metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
                }
                "--obs-format" => {
                    parsed.format = it
                        .next()
                        .ok_or("--obs-format needs a value")?
                        .parse::<ObsFormat>()?;
                    parsed.format_explicit = true;
                }
                _ => rest.push(a.clone()),
            }
        }
        Ok((parsed, rest))
    }

    /// Whether any flag asked for observability output.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.format_explicit
    }

    /// A recorder matching the flags: enabled when any output was requested,
    /// otherwise the zero-overhead disabled recorder.
    pub fn recorder(&self) -> Recorder {
        if self.enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Writes the requested outputs from the recorder: the Chrome trace to
    /// `--trace`, the report (in `--obs-format`) to `--metrics` or stdout.
    /// A no-op for a disabled recorder.
    pub fn emit(&self, rec: &Recorder) -> Result<(), String> {
        if !rec.is_enabled() {
            return Ok(());
        }
        let report = rec.report();
        if let Some(path) = &self.trace {
            std::fs::write(path, report.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
        let rendered = report.render(self.format);
        if let Some(path) = &self.metrics {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {:?} report to {path}", self.format);
        } else if self.format_explicit {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            out.write_all(rendered.as_bytes())
                .and_then(|()| {
                    if rendered.ends_with('\n') {
                        Ok(())
                    } else {
                        writeln!(out)
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_extracts_flags_and_keeps_the_rest() {
        let (obs, rest) = ObsArgs::parse(&s(&[
            "a.mtx",
            "--trace",
            "t.json",
            "--op",
            "matmul",
            "--obs-format",
            "jsonl",
        ]))
        .unwrap();
        assert_eq!(obs.trace.as_deref(), Some("t.json"));
        assert_eq!(obs.format, ObsFormat::Jsonl);
        assert!(obs.format_explicit);
        assert!(obs.enabled());
        assert!(obs.recorder().is_enabled());
        assert_eq!(rest, s(&["a.mtx", "--op", "matmul"]));
    }

    #[test]
    fn no_flags_means_disabled_recorder() {
        let (obs, rest) = ObsArgs::parse(&s(&["x", "y"])).unwrap();
        assert!(!obs.enabled());
        assert!(!obs.recorder().is_enabled());
        assert_eq!(rest.len(), 2);
        // emit on a disabled recorder is a no-op.
        obs.emit(&Recorder::disabled()).unwrap();
    }

    #[test]
    fn parse_rejects_missing_values_and_bad_formats() {
        assert!(ObsArgs::parse(&s(&["--trace"])).is_err());
        assert!(ObsArgs::parse(&s(&["--metrics"])).is_err());
        assert!(ObsArgs::parse(&s(&["--obs-format", "xml"])).is_err());
    }
}
