//! Shared observability flags for the benchmark binaries:
//!
//! ```text
//! --trace <file>          write a Chrome trace_event JSON (chrome://tracing,
//!                         Perfetto) of every span in the run
//! --metrics <file>        write the metrics/accuracy report to a file
//! --obs-format <fmt>      table | jsonl | chrome | prom — format of the
//!                         report (stdout when no --metrics file is given)
//! ```
//!
//! Any of the three flags switches the run's recorder on; without them the
//! binaries keep the zero-overhead disabled recorder.
//!
//! Live observability (the `mnc-obsd` daemon) rides the same parser:
//!
//! ```text
//! --serve-obs <addr>      serve GET /metrics /healthz /flight /attribution
//!                         on <addr> (use 127.0.0.1:0 for an OS-assigned
//!                         port, printed to stderr)
//! --flight-capacity <n>   flight-ring slots per stream (default 1024)
//! --serve-linger <secs>   keep the endpoint up for <secs> after the work
//!                         finishes (CI smoke tests, manual curls)
//! ```

use std::io::Write as _;

use mnc_obs::{ObsFormat, Recorder};
use mnc_obsd::{ObsDaemon, ObsdConfig, ServerHandle};

/// Parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// `--trace <file>`: Chrome trace output path.
    pub trace: Option<String>,
    /// `--metrics <file>`: report output path.
    pub metrics: Option<String>,
    /// `--obs-format <fmt>` (default `table`).
    pub format: ObsFormat,
    /// Whether `--obs-format` was given explicitly (an explicit format with
    /// no `--metrics` file sends the report to stdout).
    pub format_explicit: bool,
    /// `--serve-obs <addr>`: bind the live telemetry endpoint here.
    pub serve_obs: Option<String>,
    /// `--flight-capacity <n>` (default [`DEFAULT_FLIGHT_CAPACITY`]).
    pub flight_capacity: usize,
    /// `--serve-linger <secs>`: keep serving this long after the work.
    pub serve_linger: Option<u64>,
}

/// Default `--flight-capacity`.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Usage lines for the observability flags, for the binaries' help text.
pub const OBS_USAGE: &str = "[--trace <file>] [--metrics <file>] \
     [--obs-format table|jsonl|chrome|prom]\n    \
     [--serve-obs <addr>] [--flight-capacity <n>] [--serve-linger <secs>]";

impl ObsArgs {
    /// Extracts the observability flags from `args`, returning the parsed
    /// flags and the remaining (unconsumed) arguments.
    pub fn parse(args: &[String]) -> Result<(ObsArgs, Vec<String>), String> {
        let mut parsed = ObsArgs {
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            ..ObsArgs::default()
        };
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => {
                    parsed.trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
                }
                "--metrics" => {
                    parsed.metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
                }
                "--obs-format" => {
                    parsed.format = it
                        .next()
                        .ok_or("--obs-format needs a value")?
                        .parse::<ObsFormat>()?;
                    parsed.format_explicit = true;
                }
                "--serve-obs" => {
                    parsed.serve_obs =
                        Some(it.next().ok_or("--serve-obs needs an address")?.clone());
                }
                "--flight-capacity" => {
                    parsed.flight_capacity = it
                        .next()
                        .ok_or("--flight-capacity needs a value")?
                        .parse()
                        .map_err(|_| "bad --flight-capacity value")?;
                }
                "--serve-linger" => {
                    parsed.serve_linger = Some(
                        it.next()
                            .ok_or("--serve-linger needs a value in seconds")?
                            .parse()
                            .map_err(|_| "bad --serve-linger value")?,
                    );
                }
                _ => rest.push(a.clone()),
            }
        }
        Ok((parsed, rest))
    }

    /// Whether any flag asked for observability output (report files or a
    /// live endpoint).
    pub fn enabled(&self) -> bool {
        self.trace.is_some()
            || self.metrics.is_some()
            || self.format_explicit
            || self.serve_obs.is_some()
    }

    /// A recorder matching the flags: a full (unbounded) recorder when a
    /// report output was requested, a **bounded** one when only
    /// `--serve-obs` asked for live telemetry (service mode — span storage
    /// must not grow without limit), and the zero-overhead disabled
    /// recorder otherwise.
    pub fn recorder(&self) -> Recorder {
        if self.trace.is_some() || self.metrics.is_some() || self.format_explicit {
            Recorder::enabled()
        } else if self.serve_obs.is_some() {
            Recorder::enabled_with_capacity(self.flight_capacity)
        } else {
            Recorder::disabled()
        }
    }

    /// Starts the live telemetry endpoint when `--serve-obs` was given:
    /// builds an [`ObsDaemon`] (flight capacity from `--flight-capacity`),
    /// binds the address, and prints the resolved address to stderr (with
    /// `:0` binds this is how scripts learn the port). Returns `None`
    /// without the flag.
    pub fn serve(&self) -> Result<Option<ObsServer>, String> {
        let Some(addr) = &self.serve_obs else {
            return Ok(None);
        };
        let daemon = ObsDaemon::new(ObsdConfig {
            flight_capacity: self.flight_capacity.max(1),
            ..ObsdConfig::default()
        });
        let handle = daemon
            .serve(addr)
            .map_err(|e| format!("--serve-obs {addr}: {e}"))?;
        eprintln!(
            "obsd: serving on http://{} (/metrics /healthz /flight /attribution)",
            handle.local_addr()
        );
        Ok(Some(ObsServer {
            daemon,
            handle,
            linger_secs: self.serve_linger,
        }))
    }

    /// Writes the requested outputs from the recorder: the Chrome trace to
    /// `--trace`, the report (in `--obs-format`) to `--metrics` or stdout.
    /// A no-op for a disabled recorder.
    pub fn emit(&self, rec: &Recorder) -> Result<(), String> {
        if !rec.is_enabled() {
            return Ok(());
        }
        let report = rec.report();
        if let Some(path) = &self.trace {
            std::fs::write(path, report.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
        let rendered = report.render(self.format);
        if let Some(path) = &self.metrics {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {:?} report to {path}", self.format);
        } else if self.format_explicit {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            out.write_all(rendered.as_bytes())
                .and_then(|()| {
                    if rendered.ends_with('\n') {
                        Ok(())
                    } else {
                        writeln!(out)
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// A running live-telemetry endpoint (`--serve-obs`): the daemon plus its
/// HTTP server handle.
pub struct ObsServer {
    daemon: ObsDaemon,
    handle: ServerHandle,
    linger_secs: Option<u64>,
}

impl ObsServer {
    /// The daemon, for installing onto recorders and inspecting state.
    pub fn daemon(&self) -> &ObsDaemon {
        &self.daemon
    }

    /// The bound address (port resolved for `:0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.handle.local_addr()
    }

    /// Wires a recorder's streams and registry into the daemon (see
    /// [`ObsDaemon::install`]).
    pub fn install(&self, rec: &Recorder) -> bool {
        self.daemon.install(rec)
    }

    /// Finishes the serving phase: honors `--serve-linger` (so smoke tests
    /// and humans can still curl the endpoints after the work is done),
    /// then shuts the server down.
    pub fn finish(mut self) {
        if let Some(secs) = self.linger_secs {
            eprintln!("obsd: work done; serving for {secs}s more (--serve-linger)");
            std::thread::sleep(std::time::Duration::from_secs(secs));
        }
        self.handle.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_extracts_flags_and_keeps_the_rest() {
        let (obs, rest) = ObsArgs::parse(&s(&[
            "a.mtx",
            "--trace",
            "t.json",
            "--op",
            "matmul",
            "--obs-format",
            "jsonl",
        ]))
        .unwrap();
        assert_eq!(obs.trace.as_deref(), Some("t.json"));
        assert_eq!(obs.format, ObsFormat::Jsonl);
        assert!(obs.format_explicit);
        assert!(obs.enabled());
        assert!(obs.recorder().is_enabled());
        assert_eq!(rest, s(&["a.mtx", "--op", "matmul"]));
    }

    #[test]
    fn no_flags_means_disabled_recorder() {
        let (obs, rest) = ObsArgs::parse(&s(&["x", "y"])).unwrap();
        assert!(!obs.enabled());
        assert!(!obs.recorder().is_enabled());
        assert_eq!(rest.len(), 2);
        // emit on a disabled recorder is a no-op.
        obs.emit(&Recorder::disabled()).unwrap();
    }

    #[test]
    fn parse_rejects_missing_values_and_bad_formats() {
        assert!(ObsArgs::parse(&s(&["--trace"])).is_err());
        assert!(ObsArgs::parse(&s(&["--metrics"])).is_err());
        assert!(ObsArgs::parse(&s(&["--obs-format", "xml"])).is_err());
        assert!(ObsArgs::parse(&s(&["--serve-obs"])).is_err());
        assert!(ObsArgs::parse(&s(&["--flight-capacity", "many"])).is_err());
        assert!(ObsArgs::parse(&s(&["--serve-linger", "-1"])).is_err());
    }

    #[test]
    fn serve_flags_select_a_bounded_recorder_and_start_the_endpoint() {
        let (obs, rest) = ObsArgs::parse(&s(&[
            "a.mtx",
            "--serve-obs",
            "127.0.0.1:0",
            "--flight-capacity",
            "16",
        ]))
        .unwrap();
        assert_eq!(rest, s(&["a.mtx"]));
        assert!(obs.enabled());
        // Service mode without report flags: bounded storage.
        let rec = obs.recorder();
        assert_eq!(rec.ring_capacity(), Some(16));
        // With a report flag too, the unbounded recorder wins.
        let (both, _) =
            ObsArgs::parse(&s(&["--serve-obs", "127.0.0.1:0", "--obs-format", "jsonl"])).unwrap();
        assert_eq!(both.recorder().ring_capacity(), None);
        assert!(both.recorder().is_enabled());

        // The endpoint comes up and answers /healthz.
        let server = obs.serve().unwrap().expect("flag set");
        assert!(server.install(&rec));
        let addr = server.local_addr();
        use std::io::{Read as _, Write as _};
        let mut c = std::net::TcpStream::connect(addr).unwrap();
        c.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.finish();

        // No flag, no server.
        let (none, _) = ObsArgs::parse(&s(&["x"])).unwrap();
        assert!(none.serve().unwrap().is_none());
    }
}
