//! The `mnc-perf` suite: a fixed benchmark-and-profiling workload whose
//! results land in a stable-schema JSON record (`"schema": "mnc.perf.v1"`,
//! written to `BENCH_MNC.json`) so perf, memory, and accuracy can be
//! tracked *as a trajectory* across commits instead of one-off figure runs.
//!
//! Five workloads, each enclosed in a `"workload"` span on a shared
//! [`Recorder`]:
//!
//! 1. **estimators** — per-estimator synopsis construction + single-op
//!    estimation across sparsities and shapes (Figures 8/14 territory);
//! 2. **chain** — sketch propagation down a product chain (Figure 12);
//! 3. **kernels** — scalar-vs-kernel microbenchmarks of the `mnc-kernels`
//!    hot paths (`kernel.*` metrics: latency-gated p50s plus informational
//!    speedup ratios);
//! 4. **cache** — an [`EstimationContext`] optimizer-probe workload, cached
//!    vs uncached;
//! 5. **sparsest/b1** — the B1 accuracy sweep feeding per-estimator error
//!    summaries;
//! 6. **served/load** — concurrent HTTP clients against an in-process
//!    `mnc-served` (end-to-end latency quantiles);
//! 7. **parallel** — sequential vs `MNC_THREADS`-worker runs of the
//!    pool-backed paths (sketch build, boolean MM, density-map matmul,
//!    DAG wavefront): `parallel.*.{seq,par}_p50_ns` latency-gated plus the
//!    informational `parallel.*.speedup` ratios, with results asserted
//!    bit-identical before timing.
//!
//! Latency quantiles are aggregated from the recorder's spans (the same
//! records the Chrome trace shows), synopsis memory comes from
//! [`Synopsis::heap_bytes`], per-workload allocation totals from the
//! feature-gated counting allocator, and the environment fingerprint from
//! [`EnvInfo`]. [`compare_to_baseline`] re-reads a checked-in record and
//! gates each metric class with noise-tolerant thresholds — the CI
//! regression gate behind `mnc-perf --baseline BENCH_MNC.json`.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mnc_kernels::{scalar, ScratchArena};

use mnc_estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, DynamicDensityMapEstimator,
    HashEstimator, LayeredGraphEstimator, MetaAcEstimator, MncEstimator, OpKind, SparsityEstimator,
    Synopsis,
};
use mnc_expr::{estimate_root, EstimationContext, ExprDag, NodeId, Recorder};
use mnc_matrix::{gen, CsrMatrix};
use mnc_obs::accuracy::{summarize, AccuracySummary};
use mnc_obs::export::json_f64;
use mnc_obs::AccuracyRecord;
use mnc_sparsest::runner::{run_case, standard_estimators};
use mnc_sparsest::usecases::b1_suite;
use mnc_sparsest::Outcome;
use rand::SeedableRng;

use crate::env_info::EnvInfo;
use crate::json::{parse, JsonValue};

/// Schema tag of the JSON record. The field set under it is append-only.
pub const SCHEMA: &str = "mnc.perf.v1";

/// One completed suite run: the flat metric map, per-estimator accuracy
/// summaries, the environment fingerprint, and the rendered time-attribution
/// table.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Environment fingerprint of the run.
    pub env: EnvInfo,
    /// Flat metric map. The *suffix* determines how the baseline compare
    /// gates a metric — see [`classify`].
    pub metrics: BTreeMap<String, f64>,
    /// Per-estimator accuracy summaries from the B1 sweep.
    pub accuracy: Vec<AccuracySummary>,
    /// Per-phase self-time attribution table (stderr, not part of the JSON).
    pub attribution: String,
}

/// Metric names may not contain spaces (estimator display names do).
fn slug(name: &str) -> String {
    name.replace(' ', "_")
}

/// Nearest-rank quantile over an already-sorted sample.
fn quantile_ns(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// The synopsis-bearing estimator line-up the perf suite drives: one of
/// each synopsis family (Table 1), MNC last.
fn lineup() -> Vec<Box<dyn SparsityEstimator>> {
    vec![
        Box::new(MetaAcEstimator),
        Box::new(BitsetEstimator::default()),
        Box::new(DensityMapEstimator::default()),
        Box::new(DynamicDensityMapEstimator::default()),
        Box::new(BiasedSamplingEstimator::default()),
        Box::new(HashEstimator::default()),
        Box::new(LayeredGraphEstimator::default()),
        Box::new(MncEstimator::new()),
    ]
}

/// Workload 1: per-estimator build + matmul estimation across sparsities
/// and shapes, plus the measured synopsis footprint on the reference
/// matrix.
fn estimator_workload(rec: &Recorder, d: usize, reps: usize, metrics: &mut BTreeMap<String, f64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE2C);
    let square: Vec<Arc<CsrMatrix>> = [0.001, 0.01, 0.05]
        .iter()
        .map(|&s| Arc::new(gen::rand_uniform(&mut rng, d, d, s)))
        .collect();
    let tall = Arc::new(gen::rand_uniform(&mut rng, d, d.div_ceil(2), 0.01));
    for est in lineup() {
        let _w = rec
            .span("workload")
            .op(format!("estimators/{}", est.name()));
        for _ in 0..reps {
            for m in square.iter().chain(std::iter::once(&tall)) {
                let g = rec.span("build").op(est.name()).nnz_in(m.nnz() as u64);
                let syn = est.build(m);
                drop(g);
                let Ok(syn) = syn else { continue };
                if m.nrows() == m.ncols() {
                    let _g = rec.span("estimate").op(est.name());
                    let _ = est.estimate(&OpKind::MatMul, &[&syn, &syn]);
                }
            }
        }
        // Footprint on the 1%-dense reference matrix: measured retained
        // heap next to the logical accounting, both memory-gated.
        if let Ok(syn) = est.build(&square[1]) {
            let key = slug(est.name());
            metrics.insert(
                format!("synopsis.{key}.heap_bytes"),
                syn.heap_bytes() as f64,
            );
            metrics.insert(
                format!("synopsis.{key}.size_bytes"),
                syn.size_bytes() as f64,
            );
        }
    }
}

/// Workload 2: synopsis propagation down a 4-matrix product chain for the
/// estimators that support chains natively.
fn chain_workload(rec: &Recorder, d: usize, reps: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A1);
    let mats: Vec<Arc<CsrMatrix>> = [0.01, 0.005, 0.02, 0.01]
        .iter()
        .map(|&s| Arc::new(gen::rand_uniform(&mut rng, d, d, s)))
        .collect();
    let ests: Vec<Box<dyn SparsityEstimator>> = vec![
        Box::new(MncEstimator::new()),
        Box::new(DensityMapEstimator::default()),
        Box::new(BitsetEstimator::default()),
    ];
    for est in ests {
        let _w = rec.span("workload").op(format!("chain/{}", est.name()));
        for _ in 0..reps {
            let synopses: Vec<Synopsis> = mats.iter().filter_map(|m| est.build(m).ok()).collect();
            if synopses.len() != mats.len() {
                continue;
            }
            let mut acc = synopses[0].clone();
            for s in &synopses[1..] {
                let mut g = rec.span("propagate").op(est.name());
                match est.propagate(&OpKind::MatMul, &[&acc, s]) {
                    Ok(next) => {
                        g.set_bytes(next.heap_bytes());
                        acc = next;
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// Deterministic count vector for the kernel workload (no `rand`
/// dependency on the hot path; LCG keeps runs reproducible).
fn lcg_counts(seed: u64, len: usize, max: u32) -> Vec<u32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as u32) % (max + 1)
        })
        .collect()
}

/// Median per-iteration nanoseconds over `samples` batched samples of
/// `inner` iterations each (batching lifts cheap kernels above timer
/// granularity; the median rejects scheduler outliers).
fn batched_p50_ns(samples: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut durs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        durs.push(t.elapsed().as_nanos() as u64 / inner as u64);
    }
    durs.sort_unstable();
    quantile_ns(&durs, 0.5)
}

/// Workload 5: scalar-vs-kernel microbenchmarks of the hot-path primitives
/// introduced by `mnc-kernels` — the sketch dot product, the `bool_mm`
/// four-row OR fold, and a chain-opt DP step (the sketch dot products that
/// price every split of an eight-matrix chain plus one scaled propagation of
/// the winning cell, with arena-leased, recycled outputs on the kernel
/// side). Emits `kernel.<name>.{scalar_p50_ns, kernel_p50_ns}`
/// (latency-gated) and the ungated `kernel.<name>.speedup` ratio.
fn kernel_workload(rec: &Recorder, scale: f64, metrics: &mut BTreeMap<String, f64>) {
    let _w = rec.span("workload").op("kernels");
    let len = ((20_000.0 * scale) as usize).max(2048);
    let x = lcg_counts(1, len, 1000);
    let y = lcg_counts(2, len, 1000);
    let (samples, inner) = (31, (1 << 16) / len.min(1 << 16) + 4);
    fn record(metrics: &mut BTreeMap<String, f64>, name: &str, scalar_ns: f64, kernel_ns: f64) {
        metrics.insert(format!("kernel.{name}.scalar_p50_ns"), scalar_ns);
        metrics.insert(format!("kernel.{name}.kernel_p50_ns"), kernel_ns);
        metrics.insert(
            format!("kernel.{name}.speedup"),
            scalar_ns / kernel_ns.max(1.0),
        );
    }

    let scalar_dot = batched_p50_ns(samples, inner, || {
        black_box(scalar::dot_u32(black_box(&x), black_box(&y)));
    });
    record(
        metrics,
        "dot",
        scalar_dot,
        batched_p50_ns(samples, inner, || {
            black_box(mnc_kernels::dot_u32_portable(black_box(&x), black_box(&y)));
        }),
    );
    // The runtime-dispatched lane (AVX2 where the host has it, the portable
    // kernel elsewhere) gets its own gated latency plus an info ratio.
    let simd_dot = batched_p50_ns(samples, inner, || {
        black_box(mnc_kernels::dot_u32(black_box(&x), black_box(&y)));
    });
    metrics.insert("kernel.dot.simd_p50_ns".into(), simd_dot);
    metrics.insert(
        "kernel.dot.simd_speedup".into(),
        scalar_dot / simd_dot.max(1.0),
    );

    // The `bool_mm` inner loop: OR four synopsis rows into the output row —
    // one row at a time (the original accumulation) against the batched
    // single-pass `or4_into` fold. Identical bits either way (OR is
    // associative and commutative).
    let rows: Vec<Vec<u64>> = (0..4)
        .map(|i| {
            lcg_counts(5 + i, len, u32::MAX - 1)
                .iter()
                .zip(lcg_counts(9 + i, len, u32::MAX - 1).iter())
                .map(|(&a, &b)| (a as u64) << 32 | b as u64)
                .collect()
        })
        .collect();
    let mut dst = vec![0u64; len];
    let scalar_or = batched_p50_ns(samples, inner, || {
        dst.fill(0);
        for r in &rows {
            scalar::or_into(&mut dst, r);
        }
        black_box(&dst);
    });
    record(
        metrics,
        "bool_mm_or",
        scalar_or,
        batched_p50_ns(samples, inner, || {
            dst.fill(0);
            mnc_kernels::or4_into_portable(&mut dst, &rows[0], &rows[1], &rows[2], &rows[3]);
            black_box(&dst);
        }),
    );
    let simd_or = batched_p50_ns(samples, inner, || {
        dst.fill(0);
        mnc_kernels::or4_into(&mut dst, &rows[0], &rows[1], &rows[2], &rows[3]);
        black_box(&dst);
    });
    metrics.insert("kernel.bool_mm_or.simd_p50_ns".into(), simd_or);
    metrics.insert(
        "kernel.bool_mm_or.simd_speedup".into(),
        scalar_or / simd_or.max(1.0),
    );

    // Bitset word popcount (sparsity readback, and_popcount pricing):
    // scalar count_ones fold vs the portable fold vs the dispatched
    // nibble-LUT lane.
    let words = &rows[0];
    let scalar_pc = batched_p50_ns(samples, inner, || {
        black_box(scalar::popcount(black_box(words)));
    });
    record(
        metrics,
        "popcount",
        scalar_pc,
        batched_p50_ns(samples, inner, || {
            black_box(mnc_kernels::popcount_portable(black_box(words)));
        }),
    );
    let simd_pc = batched_p50_ns(samples, inner, || {
        black_box(mnc_kernels::popcount(black_box(words)));
    });
    metrics.insert("kernel.popcount.simd_p50_ns".into(), simd_pc);
    metrics.insert(
        "kernel.popcount.simd_speedup".into(),
        scalar_pc / simd_pc.max(1.0),
    );

    // Chain-opt DP probe: price every split of a six-sketch matmul chain
    // via sketch dot products, then propagate the winning cell once —
    // scale both count vectors and derive their metadata. The scalar side
    // is the pre-kernel shape: clone the two memoized sketches (the old
    // clone-then-propagate DP cell), sequential f64 dots, allocating scale,
    // separate metadata scans. The kernel side propagates from borrows via
    // the integer dot and the fused scale-with-metadata, writing into
    // arena-recycled buffers. Counts are mostly zero, as the sketches of
    // sparse matrices are. Deterministic rounding keeps both sides
    // comparable (no RNG stream to advance).
    let vecs: Vec<Vec<u32>> = (0..8)
        .map(|i| {
            let mut v = lcg_counts(20 + i, len, 1000);
            v.iter_mut()
                .for_each(|c| *c = if *c % 8 == 0 { *c } else { 0 });
            v
        })
        .collect();
    let half = (len / 2) as u32;
    let cap = len as u64;
    let round = |v: f64| v.round() as u64;
    let n = vecs.len();
    let splits = ((n * n * n - n) / 6) as f64;
    let scalar_ns = batched_p50_ns(samples, inner.div_ceil(4), || {
        let mut acc = 0.0;
        for span in 2..=n {
            for i in 0..=n - span {
                for k in i..i + span - 1 {
                    acc += scalar::dot_u32(&vecs[i], &vecs[k + 1]);
                }
            }
        }
        let (left, right) = (
            (vecs[0].clone(), vecs[1].clone()),
            (vecs[2].clone(), vecs[3].clone()),
        );
        let target = acc / splits;
        let hr = scalar::scale_round(&left.0, target, cap, round);
        let row_meta = scalar::meta_scan(&hr, half);
        let hc = scalar::scale_round(&right.1, target, cap, round);
        let col_meta = scalar::meta_scan(&hc, half);
        black_box((acc, left, right, hr, hc, row_meta, col_meta));
    });
    let mut arena = ScratchArena::new();
    let kernel_ns = batched_p50_ns(samples, inner.div_ceil(4), || {
        let mut acc = 0.0;
        for span in 2..=n {
            for i in 0..=n - span {
                for k in i..i + span - 1 {
                    acc += mnc_kernels::dot_u32(&vecs[i], &vecs[k + 1]);
                }
            }
        }
        let target = acc / splits;
        let mut hr = arena.take_u32_spare();
        let row_meta = mnc_kernels::scale_round_into(&vecs[0], target, cap, half, round, &mut hr);
        let mut hc = arena.take_u32_spare();
        let col_meta = mnc_kernels::scale_round_into(&vecs[3], target, cap, half, round, &mut hc);
        black_box((acc, &hr, &hc, row_meta, col_meta));
        arena.put_u32(hr);
        arena.put_u32(hc);
    });
    record(metrics, "propagation_chain", scalar_ns, kernel_ns);
}

/// Builds one optimizer probe over the shared leaves: alternating left- and
/// right-deep parenthesizations, as in `cache_bench`.
fn probe_dag(mats: &[Arc<CsrMatrix>], probe: usize) -> (ExprDag, NodeId) {
    let mut dag = ExprDag::new();
    let leaves: Vec<NodeId> = mats
        .iter()
        .enumerate()
        .map(|(i, m)| dag.leaf(format!("M{i}"), Arc::clone(m)))
        .collect();
    let root = if probe.is_multiple_of(2) {
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = dag.matmul(acc, l).expect("chain shapes agree");
        }
        acc
    } else {
        let mut acc = *leaves.last().expect("non-empty");
        for &l in leaves[..leaves.len() - 1].iter().rev() {
            acc = dag.matmul(l, acc).expect("chain shapes agree");
        }
        acc
    };
    (dag, root)
}

/// Workload 3: the `EstimationContext` cache workload — repeated probes over
/// shared leaves with a session vs without one.
fn cache_workload(rec: &Recorder, d: usize, reps: usize, metrics: &mut BTreeMap<String, f64>) {
    let _w = rec.span("workload").op("cache");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAC4E);
    let mats: Vec<Arc<CsrMatrix>> = [0.01, 0.001, 0.02, 0.005]
        .iter()
        .map(|&s| Arc::new(gen::rand_uniform(&mut rng, d, d, s)))
        .collect();
    let dags: Vec<(ExprDag, NodeId)> = (0..2).map(|p| probe_dag(&mats, p)).collect();
    let est = MncEstimator::new();
    let probes = reps.max(2) * 4;

    let t = Instant::now();
    let mut ctx = EstimationContext::new().with_recorder(rec.clone());
    for probe in 0..probes {
        let (dag, root) = &dags[probe % dags.len()];
        ctx.estimate_root(&est, dag, *root).expect("estimate");
    }
    metrics.insert(
        "cache.cached_total_ns".into(),
        t.elapsed().as_nanos() as f64,
    );

    let t = Instant::now();
    for probe in 0..probes {
        let (dag, root) = &dags[probe % dags.len()];
        estimate_root(&est, dag, *root).expect("estimate");
    }
    metrics.insert(
        "cache.uncached_total_ns".into(),
        t.elapsed().as_nanos() as f64,
    );

    let stats = ctx.stats();
    metrics.insert("cache.hit_rate".into(), stats.hit_rate());
    metrics.insert("cache.builds".into(), stats.builds as f64);
    metrics.insert("cache.hits".into(), stats.cache_hits as f64);
    metrics.insert("cache.misses".into(), stats.cache_misses as f64);
}

/// Workload 4: the SparsEst B1 accuracy sweep over the standard estimator
/// line-up, summarized per estimator.
fn accuracy_workload(
    rec: &Recorder,
    scale: f64,
    metrics: &mut BTreeMap<String, f64>,
) -> Vec<AccuracySummary> {
    let _w = rec.span("workload").op("sparsest/b1");
    let cases = b1_suite(scale, 42);
    let ests = standard_estimators();
    let refs: Vec<&dyn SparsityEstimator> = ests.iter().map(|b| b.as_ref()).collect();
    let mut records = Vec::new();
    for case in &cases {
        for r in run_case(case, &refs) {
            if let Outcome::Estimate { estimate, .. } = r.outcome {
                records.push(AccuracyRecord::new(
                    r.case,
                    "root",
                    r.estimator,
                    estimate,
                    r.truth,
                ));
            }
        }
    }
    let summaries = summarize(&records);
    for s in &summaries {
        let key = slug(&s.estimator);
        metrics.insert(format!("accuracy.{key}.geo_mean_error"), s.geo_mean_error);
        metrics.insert(format!("accuracy.{key}.infinite"), s.infinite as f64);
        metrics.insert(format!("accuracy.{key}.count"), s.count as f64);
    }
    summaries
}

/// Workload 6: the `mnc-served` concurrent-client load — full HTTP round
/// trips against an in-process service over a throwaway catalog. The
/// latency quantiles are service-path end-to-end (routing + admission +
/// session cache + walk), gated like every other `*_ns` metric.
fn served_workload(rec: &Recorder, scale: f64, reps: usize, metrics: &mut BTreeMap<String, f64>) {
    let _w = rec.span("workload").op("served/load");
    let clients = 4;
    let requests = (10 * reps).max(5);
    let report = crate::served_load::run_load(scale, clients, requests);
    metrics.insert("served.estimate.p50_ns".into(), report.p50_ns);
    metrics.insert("served.estimate.p99_ns".into(), report.p99_ns);
    // The trace plane's service-side latency split: queue wait (admission
    // gate) vs actual service time. A scheduling regression shows up in the
    // first, a compute regression in the second.
    metrics.insert("served.queue_wait.p99_ns".into(), report.queue_wait_p99_ns);
    metrics.insert("served.service.p50_ns".into(), report.service_p50_ns);
    metrics.insert("served.service.p99_ns".into(), report.service_p99_ns);
    metrics.insert("served.requests_ok".into(), report.ok as f64);
    metrics.insert("served.requests_err".into(), report.errors as f64);
    // The shadow plane runs at rate 1.0 during the load: the drop rate is
    // the shed fraction of the bounded background queue (informational —
    // shedding is the design, not a regression), and the shadow p99 is the
    // off-thread alternate-estimator latency, gated like any `*_ns`.
    metrics.insert("served.shadow.sampled".into(), report.shadow_sampled as f64);
    metrics.insert(
        "served.shadow.completed".into(),
        report.shadow_completed as f64,
    );
    metrics.insert("served.shadow.drop_rate".into(), report.shadow_drop_rate);
    metrics.insert("served.shadow.p99_ns".into(), report.shadow_p99_ns);
}

/// Workload 7: sequential vs multi-threaded runs of the pool-backed hot
/// paths. Thread count comes from `MNC_THREADS` (default 4). Every pair is
/// asserted bit-identical once before timing — the parallel paths are
/// rearrangements of the same arithmetic, not approximations — then both
/// sides are timed and emitted as `parallel.<name>.{seq_p50_ns, par_p50_ns}`
/// (latency-gated) plus the ungated `parallel.<name>.speedup` ratio.
fn parallel_workload(rec: &Recorder, scale: f64, reps: usize, metrics: &mut BTreeMap<String, f64>) {
    use mnc_estimators::bitset::{bool_mm, bool_mm_parallel, BitsetSynopsis};

    let _w = rec.span("workload").op("parallel");
    let threads = std::env::var("MNC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(4);
    metrics.insert("parallel.threads".into(), threads as f64);
    let samples = (2 * reps + 1).min(9);
    let mut record = |name: &str, seq_ns: f64, par_ns: f64| {
        metrics.insert(format!("parallel.{name}.seq_p50_ns"), seq_ns);
        metrics.insert(format!("parallel.{name}.par_p50_ns"), par_ns);
        metrics.insert(format!("parallel.{name}.speedup"), seq_ns / par_ns.max(1.0));
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9A12_11E1);
    // Paper-scale at `--scale 1.0`: 3000-dim operands, large enough that the
    // per-call scoped-thread spawn (~100µs) amortizes. At CI's 0.1 scale the
    // matrices are small and the seq/par latencies are gated individually —
    // the speedup ratios only become meaningful at the profile scale.
    let d = ((3000.0 * scale) as usize).max(128);
    let a = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.05));
    let b = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.03));

    // MNC sketch build: row/column count scans split across workers, merged
    // in index order.
    let det = MncEstimator::with_config(
        "MNC",
        mnc_core::MncConfig {
            probabilistic_rounding: false,
            ..mnc_core::MncConfig::default()
        },
    );
    let det_par = MncEstimator::with_config(
        "MNC",
        mnc_core::MncConfig {
            probabilistic_rounding: false,
            ..mnc_core::MncConfig::default()
        },
    )
    .with_build_threads(threads);
    let (sa, pa) = (det.build(&a).unwrap(), det_par.build(&a).unwrap());
    let (sb, pb) = (det.build(&b).unwrap(), det_par.build(&b).unwrap());
    let seq_est = det.estimate(&OpKind::MatMul, &[&sa, &sb]).unwrap();
    let par_est = det_par.estimate(&OpKind::MatMul, &[&pa, &pb]).unwrap();
    assert_eq!(
        seq_est.to_bits(),
        par_est.to_bits(),
        "threaded sketch build must be bit-identical"
    );
    record(
        "sketch_build",
        batched_p50_ns(samples, 1, || {
            black_box(det.build(black_box(&a)).unwrap());
        }),
        batched_p50_ns(samples, 1, || {
            black_box(det_par.build(black_box(&a)).unwrap());
        }),
    );

    // Bitset boolean matrix product: output rows are independent; the
    // parallel fold ORs the same rows in the same order per output row.
    let (ba, bb) = (
        BitsetSynopsis::from_matrix(&a),
        BitsetSynopsis::from_matrix(&b),
    );
    let seq_mm = bool_mm(&ba, &bb);
    let par_mm = bool_mm_parallel(&ba, &bb, threads);
    assert_eq!(
        seq_mm.sparsity().to_bits(),
        par_mm.sparsity().to_bits(),
        "parallel bool_mm must be bit-identical"
    );
    record(
        "bool_mm",
        batched_p50_ns(samples, 1, || {
            black_box(bool_mm(black_box(&ba), black_box(&bb)));
        }),
        batched_p50_ns(samples, 1, || {
            black_box(bool_mm_parallel(black_box(&ba), black_box(&bb), threads));
        }),
    );

    // Density-map pseudo-product: block rows of the output are independent
    // and merged in index order. The block size scales with the dimension so
    // the grid stays ~128 blocks/side — a paper-sized pseudo-product, not a
    // single-block trivial case.
    let dm_block = (d / 128).max(1);
    let dm_seq = DensityMapEstimator::with_block(dm_block);
    let dm_par = DensityMapEstimator::with_block(dm_block).with_threads(threads);
    let (da, db) = (dm_seq.build(&a).unwrap(), dm_seq.build(&b).unwrap());
    let seq_dm = dm_seq.propagate(&OpKind::MatMul, &[&da, &db]).unwrap();
    let par_dm = dm_par.propagate(&OpKind::MatMul, &[&da, &db]).unwrap();
    assert_eq!(
        seq_dm.sparsity().to_bits(),
        par_dm.sparsity().to_bits(),
        "threaded density-map matmul must be bit-identical"
    );
    record(
        "dmap_matmul",
        batched_p50_ns(samples, 1, || {
            black_box(dm_seq.propagate(&OpKind::MatMul, &[&da, &db]).unwrap());
        }),
        batched_p50_ns(samples, 1, || {
            black_box(dm_par.propagate(&OpKind::MatMul, &[&da, &db]).unwrap());
        }),
    );

    // DAG wavefront: a wide expression (two independent products joined by
    // an add) walked cold by an `EstimationContext` — the parallel side
    // schedules each topological level across the session pool.
    let c = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.04));
    let e = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.02));
    let mut dag = ExprDag::new();
    let (la, lb, lc, le) = (
        dag.leaf("A", Arc::clone(&a)),
        dag.leaf("B", Arc::clone(&b)),
        dag.leaf("C", Arc::clone(&c)),
        dag.leaf("E", Arc::clone(&e)),
    );
    let left = dag.matmul(la, lb).expect("square chain");
    let right = dag.matmul(lc, le).expect("square chain");
    let root = dag.ew_add(left, right).expect("same shape");
    let seq_root = EstimationContext::new()
        .estimate_root(&det, &dag, root)
        .expect("estimate");
    let par_root = EstimationContext::new()
        .with_threads(threads)
        .estimate_root(&det, &dag, root)
        .expect("estimate");
    assert_eq!(
        seq_root.to_bits(),
        par_root.to_bits(),
        "parallel wavefront must be bit-identical"
    );
    record(
        "wavefront",
        batched_p50_ns(samples, 1, || {
            let mut ctx = EstimationContext::new();
            black_box(ctx.estimate_root(&det, &dag, root).expect("estimate"));
        }),
        batched_p50_ns(samples, 1, || {
            let mut ctx = EstimationContext::new().with_threads(threads);
            black_box(ctx.estimate_root(&det, &dag, root).expect("estimate"));
        }),
    );
}

/// Runs the fixed suite at the given scale knobs and returns the report
/// plus the recorder (for `--trace` / `--metrics` emission by the binary).
pub fn run_suite(scale: f64, reps: usize) -> (PerfReport, Recorder) {
    let rec = Recorder::enabled();
    let t0 = Instant::now();
    let mut metrics = BTreeMap::new();

    let d_est = ((600.0 * scale) as usize).max(40);
    let d_chain = ((400.0 * scale) as usize).max(40);
    estimator_workload(&rec, d_est, reps, &mut metrics);
    chain_workload(&rec, d_chain, reps);
    kernel_workload(&rec, scale, &mut metrics);
    cache_workload(&rec, d_est, reps, &mut metrics);
    let accuracy = accuracy_workload(&rec, scale, &mut metrics);
    served_workload(&rec, scale, reps, &mut metrics);
    parallel_workload(&rec, scale, reps, &mut metrics);
    metrics.insert("suite.total_ns".into(), t0.elapsed().as_nanos() as f64);

    // Latency quantiles aggregated from the recorder's spans — the same
    // records the Chrome trace and attribution table are built from.
    let spans = rec.spans();
    let mut groups: BTreeMap<(&str, String), Vec<u64>> = BTreeMap::new();
    for s in &spans {
        if matches!(s.name, "build" | "estimate" | "propagate") {
            if let Some(op) = &s.op {
                groups
                    .entry((s.name, op.clone()))
                    .or_default()
                    .push(s.dur_ns);
            }
        }
    }
    for ((name, op), mut durs) in groups {
        durs.sort_unstable();
        let key = slug(&op);
        metrics.insert(format!("{name}.{key}.p50_ns"), quantile_ns(&durs, 0.50));
        metrics.insert(format!("{name}.{key}.p95_ns"), quantile_ns(&durs, 0.95));
        metrics.insert(format!("{name}.{key}.max_ns"), *durs.last().unwrap() as f64);
    }

    // Per-workload wall time and (on alloc-track builds) gross allocation.
    for s in &spans {
        if s.name != "workload" {
            continue;
        }
        let Some(op) = &s.op else { continue };
        let key = slug(op);
        *metrics
            .entry(format!("workload.{key}.total_ns"))
            .or_insert(0.0) += s.dur_ns as f64;
        if let Some(bytes) = s.alloc_bytes {
            *metrics
                .entry(format!("workload.{key}.alloc_bytes"))
                .or_insert(0.0) += bytes as f64;
        }
    }
    if mnc_obs::alloc::tracking_active() {
        metrics.insert(
            "alloc.peak_bytes".into(),
            mnc_obs::alloc::peak_bytes() as f64,
        );
    }

    let attribution = mnc_obs::render_attribution(&spans);
    let env = EnvInfo::capture(scale, reps);
    (
        PerfReport {
            env,
            metrics,
            accuracy,
            attribution,
        },
        rec,
    )
}

// ---------------------------------------------------------------------------
// JSON record
// ---------------------------------------------------------------------------

/// Renders the stable-schema JSON record (multi-line, so checked-in
/// baselines diff reviewably).
pub fn render_json(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"env\": {},\n", report.env.to_json()));
    out.push_str("  \"metrics\": {\n");
    let mut first = true;
    for (k, v) in &report.metrics {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("    \"{k}\": {}", json_f64(*v)));
    }
    out.push_str("\n  },\n");
    out.push_str("  \"accuracy\": [\n");
    for (i, s) in report.accuracy.iter().enumerate() {
        let (worst_case, worst_error) = match &s.worst {
            Some((case, err)) => (
                format!("\"{}\"", mnc_obs::export::json_escape(case)),
                json_f64(*err),
            ),
            None => ("null".to_string(), "null".to_string()),
        };
        out.push_str(&format!(
            "    {{\"estimator\": \"{}\", \"count\": {}, \"infinite\": {}, \
             \"geo_mean_error\": {}, \"worst_case\": {}, \"worst_error\": {}}}{}\n",
            mnc_obs::export::json_escape(&s.estimator),
            s.count,
            s.infinite,
            json_f64(s.geo_mean_error),
            worst_case,
            worst_error,
            if i + 1 == report.accuracy.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// How the baseline compare gates a metric, decided by its name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// `*_ns`: wall-clock — noisy, wide multiplicative band plus absolute
    /// slack (containers, frequency scaling).
    Latency,
    /// `*_bytes`: memory — deterministic up to allocator rounding.
    Memory,
    /// `*.geo_mean_error`: accuracy ratio — deterministic given the seed,
    /// small band for numeric drift.
    AccuracyError,
    /// `*.infinite`: exact zero/non-zero mismatch counts — must not grow.
    ExactCount,
    /// Everything else: recorded, never gated.
    Info,
}

/// Classifies a metric name by suffix.
pub fn classify(key: &str) -> MetricClass {
    if key.ends_with("_ns") {
        MetricClass::Latency
    } else if key.ends_with("_bytes") {
        MetricClass::Memory
    } else if key.ends_with(".geo_mean_error") {
        MetricClass::AccuracyError
    } else if key.ends_with(".infinite") {
        MetricClass::ExactCount
    } else {
        MetricClass::Info
    }
}

/// One gated metric that exceeded its threshold (or disappeared).
#[derive(Debug, Clone)]
pub struct Regression {
    /// Metric name.
    pub metric: String,
    /// The class whose threshold was applied.
    pub class: MetricClass,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`NaN` when the metric vanished).
    pub current: f64,
    /// The threshold the current value had to stay under.
    pub limit: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.current.is_nan() {
            write!(
                f,
                "{}: missing from the current run (baseline {:.6e})",
                self.metric, self.baseline
            )
        } else {
            write!(
                f,
                "{}: {:.6e} exceeds limit {:.6e} ({:?} over baseline {:.6e})",
                self.metric, self.current, self.limit, self.class, self.baseline
            )
        }
    }
}

/// The per-class threshold above the baseline value. Latency gets a 5x
/// band plus 200µs absolute slack (shared runners); memory 1.25x plus one
/// 4 KiB page; accuracy 1.25x plus 0.01; exact counts must not increase.
fn limit_for(class: MetricClass, baseline: f64) -> f64 {
    match class {
        MetricClass::Latency => baseline * 5.0 + 200_000.0,
        MetricClass::Memory => baseline * 1.25 + 4096.0,
        MetricClass::AccuracyError => baseline * 1.25 + 0.01,
        MetricClass::ExactCount => baseline,
        MetricClass::Info => f64::INFINITY,
    }
}

/// Gates every classified baseline metric against the current run. A gated
/// metric missing from the current run counts as a regression (silent
/// coverage loss); metrics new in the current run are fine.
pub fn compare_metrics(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (key, &base) in baseline {
        let class = classify(key);
        if class == MetricClass::Info {
            continue;
        }
        let limit = limit_for(class, base);
        match current.get(key) {
            None => out.push(Regression {
                metric: key.clone(),
                class,
                baseline: base,
                current: f64::NAN,
                limit,
            }),
            Some(&cur) if cur > limit => out.push(Regression {
                metric: key.clone(),
                class,
                baseline: base,
                current: cur,
                limit,
            }),
            Some(_) => {}
        }
    }
    out
}

fn baseline_env_f64(env: &JsonValue, key: &str) -> Result<f64, String> {
    env.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("baseline env has no numeric `{key}`"))
}

/// Parses a checked-in `BENCH_MNC.json` and gates the current report
/// against it. Refuses (with `Err`) when the records are not comparable:
/// A warning when the checked-in baseline was generated by the **same
/// commit** as the current build. Such a gate compares a build against
/// itself: every latency/memory threshold passes by construction and the
/// record says nothing about the trajectory since the last real baseline.
/// Returns `None` when the SHAs differ (the healthy case) or when either
/// side has no usable SHA.
pub fn baseline_staleness_warning(report: &PerfReport, baseline_json: &str) -> Option<String> {
    let doc = parse(baseline_json).ok()?;
    let base_sha = doc.get("env")?.get("git_sha")?.as_str()?.trim().to_string();
    let cur_sha = report.env.git_sha.trim();
    if base_sha.is_empty() || cur_sha.is_empty() || base_sha != cur_sha {
        return None;
    }
    Some(format!(
        "baseline git_sha {base_sha} matches the current build — the gate is comparing \
         this commit against itself. Regenerate BENCH_MNC.json from the commit you want \
         to defend, or expect vacuous thresholds."
    ))
}

/// wrong schema, or different scale/reps/alloc-track knobs — comparing
/// across knobs would turn every threshold into noise.
pub fn compare_to_baseline(
    report: &PerfReport,
    baseline_json: &str,
) -> Result<Vec<Regression>, String> {
    let doc = parse(baseline_json).map_err(|e| format!("baseline does not parse: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("baseline has no `schema` field")?;
    if schema != SCHEMA {
        return Err(format!("baseline schema `{schema}`, expected `{SCHEMA}`"));
    }
    let env = doc.get("env").ok_or("baseline has no `env` field")?;
    let scale = baseline_env_f64(env, "scale")?;
    let reps = baseline_env_f64(env, "reps")?;
    if (scale - report.env.scale).abs() > 1e-9 || reps as usize != report.env.reps {
        return Err(format!(
            "baseline ran at scale {scale} / reps {reps}, current at scale {} / reps {} — \
             re-run with matching MNC_SCALE/MNC_REPS",
            report.env.scale, report.env.reps
        ));
    }
    let base_track = matches!(env.get("alloc_track"), Some(JsonValue::Bool(true)));
    if base_track != report.env.alloc_track {
        return Err(format!(
            "baseline alloc_track={base_track}, current {} — allocation metrics only \
             compare across identical feature sets",
            report.env.alloc_track
        ));
    }
    let base_metrics: BTreeMap<String, f64> = doc
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or("baseline has no `metrics` object")?
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect();
    Ok(compare_metrics(&report.metrics, &base_metrics))
}

// ---------------------------------------------------------------------------
// Deliberate regression injection (CI self-test)
// ---------------------------------------------------------------------------

/// Applies a `MNC_PERF_INJECT` spec to the metric map, e.g.
/// `latency=100` or `memory=10,infinite=3`: `latency`/`memory`/`accuracy`
/// multiply every metric of that class by the factor, `infinite` adds the
/// value to every exact-count metric. Exists so CI can prove the baseline
/// gate actually fails on a regression.
pub fn apply_injection(
    metrics: &mut BTreeMap<String, f64>,
    spec: &str,
) -> Result<Vec<String>, String> {
    let mut applied = Vec::new();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad inject spec `{part}` (expected class=value)"))?;
        let factor: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad inject value `{value}`"))?;
        let class = match name.trim() {
            "latency" => MetricClass::Latency,
            "memory" => MetricClass::Memory,
            "accuracy" => MetricClass::AccuracyError,
            "infinite" => MetricClass::ExactCount,
            other => return Err(format!("unknown inject class `{other}`")),
        };
        let mut touched = 0usize;
        for (key, v) in metrics.iter_mut() {
            if classify(key) == class {
                if class == MetricClass::ExactCount {
                    *v += factor;
                } else {
                    *v *= factor;
                }
                touched += 1;
            }
        }
        applied.push(format!(
            "injected {class:?} {}{factor} into {touched} metrics",
            if class == MetricClass::ExactCount {
                "+"
            } else {
                "x"
            }
        ));
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        let mut metrics = BTreeMap::new();
        metrics.insert("build.MNC.p50_ns".to_string(), 1000.0);
        metrics.insert("synopsis.MNC.heap_bytes".to_string(), 2560.0);
        metrics.insert("accuracy.MNC.geo_mean_error".to_string(), 1.05);
        metrics.insert("accuracy.MNC.infinite".to_string(), 0.0);
        metrics.insert("cache.hit_rate".to_string(), 0.9);
        PerfReport {
            env: EnvInfo::capture(0.1, 2),
            metrics,
            accuracy: vec![AccuracySummary {
                estimator: "MNC".to_string(),
                count: 5,
                infinite: 0,
                geo_mean_error: 1.05,
                worst: Some(("B1.1".to_string(), 1.3)),
            }],
            attribution: String::new(),
        }
    }

    #[test]
    fn self_referential_baseline_warns_loudly() {
        let report = tiny_report();
        let sha = &report.env.git_sha;
        let same = format!("{{\"schema\":\"mnc.perf.v1\",\"env\":{{\"git_sha\":\"{sha}\"}}}}");
        let warning =
            baseline_staleness_warning(&report, &same).expect("same-SHA baseline must warn");
        assert!(warning.contains(sha), "{warning}");
        assert!(warning.contains("itself"), "{warning}");
        // A baseline from any other commit is the healthy case: silent.
        let other = "{\"schema\":\"mnc.perf.v1\",\"env\":{\"git_sha\":\"a3f96872a660deadbeef\"}}";
        assert!(baseline_staleness_warning(&report, other).is_none());
        // Unparseable or SHA-less baselines never warn here — the compare
        // itself reports those failures.
        assert!(baseline_staleness_warning(&report, "not json").is_none());
        assert!(baseline_staleness_warning(&report, "{\"env\":{}}").is_none());
    }

    #[test]
    fn classification_follows_the_suffix() {
        assert_eq!(classify("build.MNC.p50_ns"), MetricClass::Latency);
        assert_eq!(classify("synopsis.Bitset.heap_bytes"), MetricClass::Memory);
        assert_eq!(classify("workload.cache.alloc_bytes"), MetricClass::Memory);
        assert_eq!(
            classify("accuracy.MNC.geo_mean_error"),
            MetricClass::AccuracyError
        );
        assert_eq!(classify("accuracy.MNC.infinite"), MetricClass::ExactCount);
        assert_eq!(classify("cache.hit_rate"), MetricClass::Info);
        // Kernel microbench latencies are gated; the speedup ratio is
        // informational (it is the *quotient* of two gated metrics).
        assert_eq!(classify("kernel.dot.kernel_p50_ns"), MetricClass::Latency);
        assert_eq!(classify("kernel.dot.scalar_p50_ns"), MetricClass::Latency);
        assert_eq!(classify("kernel.dot.speedup"), MetricClass::Info);
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let regs = compare_to_baseline(&report, &baseline).unwrap();
        assert!(regs.is_empty(), "identical run regressed: {regs:?}");
    }

    #[test]
    fn injected_latency_regression_is_caught() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut bad = report.clone();
        let applied = apply_injection(&mut bad.metrics, "latency=1000").unwrap();
        assert_eq!(applied.len(), 1);
        let regs = compare_to_baseline(&bad, &baseline).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "build.MNC.p50_ns");
        assert_eq!(regs[0].class, MetricClass::Latency);
        assert!(regs[0].to_string().contains("exceeds limit"));
    }

    #[test]
    fn injected_infinite_count_is_caught() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut bad = report.clone();
        apply_injection(&mut bad.metrics, "infinite=1").unwrap();
        let regs = compare_to_baseline(&bad, &baseline).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "accuracy.MNC.infinite");
    }

    #[test]
    fn small_jitter_stays_under_the_thresholds() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut jittered = report.clone();
        for (key, v) in jittered.metrics.iter_mut() {
            match classify(key) {
                MetricClass::Latency => *v *= 3.0,
                MetricClass::Memory => *v *= 1.1,
                MetricClass::AccuracyError => *v *= 1.01,
                _ => {}
            }
        }
        let regs = compare_to_baseline(&jittered, &baseline).unwrap();
        assert!(regs.is_empty(), "jitter flagged: {regs:?}");
    }

    #[test]
    fn vanished_gated_metric_is_a_regression() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut stripped = report.clone();
        stripped.metrics.remove("synopsis.MNC.heap_bytes");
        let regs = compare_to_baseline(&stripped, &baseline).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].current.is_nan());
        assert!(regs[0].to_string().contains("missing"));
    }

    #[test]
    fn info_metrics_are_never_gated() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut drifted = report.clone();
        drifted.metrics.insert("cache.hit_rate".to_string(), 0.0);
        assert!(compare_to_baseline(&drifted, &baseline).unwrap().is_empty());
    }

    #[test]
    fn mismatched_knobs_refuse_to_compare() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut other_scale = report.clone();
        other_scale.env.scale = 0.5;
        assert!(compare_to_baseline(&other_scale, &baseline)
            .unwrap_err()
            .contains("MNC_SCALE"));
        let mut other_track = report.clone();
        other_track.env.alloc_track = !report.env.alloc_track;
        assert!(compare_to_baseline(&other_track, &baseline)
            .unwrap_err()
            .contains("alloc_track"));
    }

    #[test]
    fn record_round_trips_through_the_parser() {
        let report = tiny_report();
        let doc = parse(&render_json(&report)).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        let metrics = doc.get("metrics").and_then(JsonValue::as_object).unwrap();
        assert_eq!(metrics.len(), report.metrics.len());
        for (k, v) in &report.metrics {
            assert_eq!(metrics[k].as_f64(), Some(*v), "metric {k}");
        }
        let acc = match doc.get("accuracy") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("expected accuracy array, got {other:?}"),
        };
        assert_eq!(
            acc[0].get("estimator").and_then(JsonValue::as_str),
            Some("MNC")
        );
        assert_eq!(
            acc[0].get("worst_case").and_then(JsonValue::as_str),
            Some("B1.1")
        );
    }

    #[test]
    fn bad_inject_specs_are_rejected() {
        let mut m = BTreeMap::new();
        assert!(apply_injection(&mut m, "latency").is_err());
        assert!(apply_injection(&mut m, "latency=abc").is_err());
        assert!(apply_injection(&mut m, "turbo=2").is_err());
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let durs: Vec<u64> = (1..=99).collect();
        assert_eq!(quantile_ns(&durs, 0.5), 50.0);
        assert_eq!(quantile_ns(&durs, 0.95), 94.0);
        assert_eq!(quantile_ns(&[], 0.5), 0.0);
    }

    /// End-to-end smoke: the tiny-scale suite produces the schema's pillars —
    /// latency quantiles from spans, measured heap for every estimator in
    /// the line-up, accuracy summaries, and a self-consistent JSON record.
    #[test]
    fn suite_smoke_run_covers_the_schema() {
        let (report, rec) = run_suite(0.05, 1);
        assert!(rec.is_enabled());
        for est in lineup() {
            let key = format!("synopsis.{}.heap_bytes", slug(est.name()));
            assert!(report.metrics.contains_key(&key), "missing {key}");
        }
        assert!(report.metrics.contains_key("build.MNC.p50_ns"));
        assert!(report.metrics.contains_key("cache.cached_total_ns"));
        for name in ["dot", "bool_mm_or", "popcount", "propagation_chain"] {
            for stat in ["scalar_p50_ns", "kernel_p50_ns", "speedup"] {
                let key = format!("kernel.{name}.{stat}");
                assert!(report.metrics.contains_key(&key), "missing {key}");
            }
        }
        // The dispatched (SIMD where available) lane is measured separately
        // from the portable kernel so the CI gate can watch it directly.
        for name in ["dot", "bool_mm_or", "popcount"] {
            for stat in ["simd_p50_ns", "simd_speedup"] {
                let key = format!("kernel.{name}.{stat}");
                assert!(report.metrics.contains_key(&key), "missing {key}");
            }
        }
        for name in ["sketch_build", "bool_mm", "dmap_matmul", "wavefront"] {
            for stat in ["seq_p50_ns", "par_p50_ns", "speedup"] {
                let key = format!("parallel.{name}.{stat}");
                assert!(report.metrics.contains_key(&key), "missing {key}");
            }
        }
        assert!(report.metrics.contains_key("parallel.threads"));
        assert!(report
            .metrics
            .keys()
            .any(|k| k.starts_with("workload.") && k.ends_with(".total_ns")));
        assert!(!report.accuracy.is_empty());
        assert!(report.attribution.contains("workload"));
        // The run gates cleanly against its own record.
        let json = render_json(&report);
        assert!(compare_to_baseline(&report, &json).unwrap().is_empty());
    }
}
