//! `mnc-cli top` — a live terminal dashboard over a running `mnc-served`
//! (or `--serve-obs`) process.
//!
//! Renders, refreshed once a second against the daemon's own endpoints:
//!
//! * a **RED table** per endpoint — request rate, error fraction, and the
//!   latest per-second p50/p99 service time, with a sparkline of recent
//!   p99s — aggregated client-side from `/v1/debug/timeline` frames (the
//!   same delta-encoded series the SLO engine consumes);
//! * the **SLO readout** — per-objective firing state, fast/slow burn
//!   rates, and error budget remaining, from `/v1/status`;
//! * **drift health** from `/healthz`.
//!
//! `--once` prints a single frame without ANSI clearing and exits — the CI
//! smoke mode whose golden shape (section tokens `ENDPOINT`, `SLO
//! OBJECTIVE`, `DRIFT`) is asserted non-interactively.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mnc_obs::json::{parse, JsonValue};
use mnc_obs::prometheus::split_labeled_name;

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Seconds of 1s frames the RED table aggregates over.
const WINDOW_S: u64 = 60;
/// Sparkline width (most recent seconds).
const SPARK_W: usize = 20;

/// Dashboard options (see [`parse_args`]).
pub struct TopOptions {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Refresh period for live mode.
    pub interval: Duration,
    /// Render one frame without ANSI control codes and exit.
    pub once: bool,
    /// Stop after this many frames (live mode; `None` = until killed).
    pub frames: Option<u64>,
}

/// Parses `top` subcommand arguments.
pub fn parse_args(args: &[String]) -> Result<TopOptions, String> {
    let mut opts = TopOptions {
        addr: "127.0.0.1:9419".to_string(),
        interval: Duration::from_millis(1000),
        once: false,
        frames: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?.clone(),
            "--interval-ms" => {
                opts.interval = Duration::from_millis(
                    value("--interval-ms")?
                        .parse()
                        .map_err(|_| "--interval-ms: not a number".to_string())?,
                )
            }
            "--once" => opts.once = true,
            "--frames" => {
                opts.frames = Some(
                    value("--frames")?
                        .parse()
                        .map_err(|_| "--frames: not a number".to_string())?,
                )
            }
            other => return Err(format!("top: unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs the dashboard until `--once`/`--frames` completes (or forever).
pub fn run(opts: &TopOptions) -> Result<(), String> {
    if opts.once {
        print!("{}", render_frame(&opts.addr)?);
        return Ok(());
    }
    let mut n = 0u64;
    loop {
        let frame = render_frame(&opts.addr)?;
        // Clear + home, then the frame: one write keeps refreshes tear-free.
        let mut out = String::with_capacity(frame.len() + 8);
        out.push_str("\x1b[2J\x1b[H");
        out.push_str(&frame);
        print!("{out}");
        let _ = std::io::stdout().flush();
        n += 1;
        if opts.frames.is_some_and(|max| n >= max) {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

/// One blocking HTTP GET; returns `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: top\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: unparseable response"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Per-endpoint RED aggregation over the timeline window.
#[derive(Default)]
struct EndpointRow {
    requests: u64,
    errors: u64,
    /// Seconds actually spanned by the frames (for the rate denominator).
    span_s: u64,
    /// Latest non-empty per-second p50/p99 (ns).
    p50_ns: u64,
    p99_ns: u64,
    /// Recent per-second p99s, oldest first (sparkline input).
    p99_series: Vec<f64>,
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if ns == 0 {
        "-".to_string()
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Scales `values` into the spark glyph range (flat-zero renders ▁▁▁).
fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARKS[0]
            } else {
                let k = ((v / max) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[k.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

fn frames_of(series: &JsonValue) -> Vec<&JsonValue> {
    match series.get("frames") {
        Some(JsonValue::Array(fr)) => fr.iter().collect(),
        _ => Vec::new(),
    }
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

/// Builds one full dashboard frame as text.
pub fn render_frame(addr: &str) -> Result<String, String> {
    let (sstat, status_body) = http_get(addr, "/v1/status")?;
    let (hstat, health_body) = http_get(addr, "/healthz")?;
    let (tstat, timeline_body) = http_get(addr, "/v1/debug/timeline?metric=served.&resolution=1s")?;

    let mut out = String::new();
    let status = if sstat == 200 {
        parse(&status_body).map_err(|e| format!("/v1/status: {e}"))?
    } else {
        JsonValue::Null
    };

    // ---- header -----------------------------------------------------------
    let health_line = if hstat == 200 { "OK" } else { "DEGRADED" };
    out.push_str(&format!(
        "mnc top — http://{addr}  up {}s  requests {}  estimates {}  health {}\n",
        num(&status, "uptime_s") as u64,
        num(&status, "requests") as u64,
        num(&status, "estimates") as u64,
        health_line,
    ));

    // ---- RED table from timeline frames -----------------------------------
    let mut rows: BTreeMap<String, EndpointRow> = BTreeMap::new();
    if tstat == 200 {
        let timeline = parse(&timeline_body).map_err(|e| format!("/v1/debug/timeline: {e}"))?;
        let now_s = num(&timeline, "now_s") as u64;
        let cutoff = now_s.saturating_sub(WINDOW_S);
        if let Some(JsonValue::Array(series)) = timeline.get("series") {
            for s in series {
                let Some(name) = s.get("metric").and_then(|m| m.as_str()) else {
                    continue;
                };
                let (base, labels) = split_labeled_name(name);
                let endpoint = labels
                    .iter()
                    .find(|(k, _)| *k == "endpoint")
                    .map(|(_, v)| v.to_string());
                match (base, endpoint) {
                    ("served.requests", Some(ep)) => {
                        let bad = labels
                            .iter()
                            .find(|(k, _)| *k == "status")
                            .is_some_and(|(_, v)| v.starts_with('5') || *v == "429");
                        let row = rows.entry(ep).or_default();
                        for f in frames_of(s) {
                            let t = num(f, "t_s") as u64;
                            if t <= cutoff {
                                continue;
                            }
                            let v = num(f, "v") as u64;
                            row.requests += v;
                            if bad {
                                row.errors += v;
                            }
                            row.span_s = row.span_s.max(now_s.saturating_sub(t) + 1);
                        }
                    }
                    ("served.service_ns", Some(ep)) => {
                        let row = rows.entry(ep).or_default();
                        for f in frames_of(s) {
                            if (num(f, "t_s") as u64) <= cutoff {
                                continue;
                            }
                            let p99 = num(f, "p99");
                            row.p99_series.push(p99);
                            if num(f, "count") > 0.0 {
                                row.p50_ns = num(f, "p50") as u64;
                                row.p99_ns = p99 as u64;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out.push_str(&format!(
        "\n{:<28} {:>8} {:>7} {:>8} {:>8}  {}\n",
        "ENDPOINT", "REQ/S", "ERR%", "p50", "p99", "p99 trend"
    ));
    let any_traffic = rows.values().any(|r| r.requests > 0);
    for (ep, row) in &rows {
        if row.requests == 0 && row.p99_series.is_empty() {
            continue;
        }
        let rate = row.requests as f64 / row.span_s.max(1) as f64;
        let errp = if row.requests == 0 {
            0.0
        } else {
            100.0 * row.errors as f64 / row.requests as f64
        };
        let spark_from = row.p99_series.len().saturating_sub(SPARK_W);
        out.push_str(&format!(
            "{:<28} {:>8.1} {:>6.1}% {:>8} {:>8}  {}\n",
            ep,
            rate,
            errp,
            fmt_ns(row.p50_ns),
            fmt_ns(row.p99_ns),
            sparkline(&row.p99_series[spark_from..]),
        ));
    }
    if !any_traffic {
        out.push_str("(no traffic in window)\n");
    }

    // ---- SLO readout -------------------------------------------------------
    out.push_str(&format!(
        "\n{:<16} {:>8} {:>11} {:>11} {:>12}\n",
        "SLO OBJECTIVE", "STATE", "BURN(fast)", "BURN(slow)", "BUDGET LEFT"
    ));
    let slo = status.get("slo").cloned().unwrap_or(JsonValue::Null);
    let mut any_obj = false;
    if let Some(JsonValue::Array(objs)) = slo.get("objectives") {
        for o in objs {
            any_obj = true;
            let firing = o.get("firing").and_then(|f| f.as_f64()).unwrap_or(0.0) > 0.0
                || matches!(o.get("firing"), Some(JsonValue::Bool(true)));
            out.push_str(&format!(
                "{:<16} {:>8} {:>10.2}x {:>10.2}x {:>11.1}%\n",
                o.get("name").and_then(|n| n.as_str()).unwrap_or("?"),
                if firing { "FIRING" } else { "ok" },
                num(o, "burn_fast"),
                num(o, "burn_slow"),
                100.0 * num(o, "budget_remaining"),
            ));
        }
    }
    if !any_obj {
        out.push_str("(no objectives declared)\n");
    }
    if let Some(JsonValue::Number(alerts)) = slo.get("alerts_total") {
        out.push_str(&format!("alerts total: {}\n", *alerts as u64));
    }

    // ---- drift health ------------------------------------------------------
    if hstat == 200 {
        out.push_str("\nDRIFT health: ok\n");
    } else {
        out.push_str("\nDRIFT health: degraded\n");
        for line in health_body.lines().skip(1).filter(|l| !l.is_empty()) {
            out.push_str(&format!("  {line}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_the_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[0.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'), "{s}");
        assert!(s.starts_with('▁'), "{s}");
    }

    #[test]
    fn ns_formatting_ranges() {
        assert_eq!(fmt_ns(0), "-");
        assert_eq!(fmt_ns(4_000), "4us");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        assert_eq!(fmt_ns(2_300_000_000), "2.30s");
    }

    #[test]
    fn arg_parsing() {
        let opts = parse_args(&[
            "--addr".into(),
            "10.0.0.1:1".into(),
            "--once".into(),
            "--interval-ms".into(),
            "250".into(),
        ])
        .unwrap();
        assert_eq!(opts.addr, "10.0.0.1:1");
        assert!(opts.once);
        assert_eq!(opts.interval, Duration::from_millis(250));
        assert!(parse_args(&["--bogus".into()]).is_err());
    }
}
