//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! and prints (a) the measured series and (b) the paper's reference values
//! where the paper states them, so the shape comparison is immediate.
//!
//! Scaling: the binaries default to dimensions that run on a laptop in
//! seconds to minutes; set `MNC_SCALE` (a factor in `(0, 1]`) to shrink or
//! grow them. `EXPERIMENTS.md` records the scale each reported run used.

pub mod env_info;
// The JSON parser moved to `mnc-obs` so the serving daemon and the
// benchmark harness read the same dialect; re-exported for existing users.
pub use mnc_obs::json;
pub mod obs;
pub mod perf;
pub mod served_load;
pub mod top;

use std::time::Duration;

use mnc_sparsest::runner::CaseResult;
use mnc_sparsest::Outcome;

pub use env_info::EnvInfo;
pub use obs::{ObsArgs, ObsServer, OBS_USAGE};

/// Reads the `MNC_SCALE` environment variable, defaulting to `default`.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("MNC_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v > 0.0 && v <= 1.0)
        .unwrap_or(default)
}

/// Number of repetitions for timing experiments (`MNC_REPS`, default 5;
/// the paper used 20).
pub fn env_reps(default: usize) -> usize {
    std::env::var("MNC_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Formats a duration in seconds with engineering precision.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats a relative error (`INF` for infinite, matching the paper's
/// Table 4 notation).
pub fn fmt_err(e: f64) -> String {
    if e.is_infinite() {
        "INF".into()
    } else if e >= 1000.0 {
        format!("{e:.3e}")
    } else {
        format!("{e:.3}")
    }
}

/// Formats a case outcome (`✗` for unsupported / out-of-memory cases, as in
/// the paper's figures).
pub fn fmt_outcome(o: &Outcome) -> String {
    match o {
        Outcome::Estimate { relative_error, .. } => fmt_err(*relative_error),
        Outcome::Unsupported => "✗ (unsupported)".into(),
        Outcome::TooLarge => "✗ (out of memory)".into(),
    }
}

/// Prints a fixed-width table: a header row and data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Groups case results into a `case x estimator` error matrix and prints it.
pub fn print_accuracy_matrix(results: &[CaseResult], estimator_order: &[&str]) {
    let mut cases: Vec<String> = Vec::new();
    for r in results {
        if !cases.contains(&r.case) {
            cases.push(r.case.clone());
        }
    }
    let mut headers = vec!["case", "truth s_C"];
    headers.extend(estimator_order);
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|case| {
            let mut row = vec![case.clone()];
            let truth = results
                .iter()
                .find(|r| &r.case == case)
                .map(|r| format!("{:.3e}", r.truth))
                .unwrap_or_default();
            row.push(truth);
            for est in estimator_order {
                let cell = results
                    .iter()
                    .find(|r| &r.case == case && r.estimator == *est)
                    .map(|r| fmt_outcome(&r.outcome))
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            row
        })
        .collect();
    print_table(&headers, &rows);
}

/// Prints the standard figure preamble.
pub fn banner(id: &str, title: &str, notes: &str) {
    println!("================================================================");
    println!("{id} — {title}");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 us");
    }

    #[test]
    fn errors_format_infinity_and_magnitude() {
        assert_eq!(fmt_err(f64::INFINITY), "INF");
        assert_eq!(fmt_err(1.234), "1.234");
        assert_eq!(fmt_err(54321.0), "5.432e4");
    }

    #[test]
    fn outcome_formatting() {
        assert_eq!(
            fmt_outcome(&Outcome::Estimate {
                estimate: 0.5,
                relative_error: 1.5
            }),
            "1.500"
        );
        assert!(fmt_outcome(&Outcome::Unsupported).contains('✗'));
        assert!(fmt_outcome(&Outcome::TooLarge).contains("memory"));
    }

    #[test]
    fn env_scale_defaults() {
        // Other tests may set the variable; only check fallback semantics.
        std::env::remove_var("MNC_SCALE");
        assert_eq!(env_scale(0.25), 0.25);
        assert_eq!(env_reps(5), 5);
    }
}
