//! Concurrent-client load harness for `mnc-served`.
//!
//! Starts an [`EstimationService`](mnc_served::EstimationService) on an
//! ephemeral loopback port over a throwaway catalog, ingests a small matrix
//! chain over HTTP, then drives `clients` threads issuing `POST
//! /v1/estimate` in a closed loop. Every request's wall latency is
//! collected; the p50/p99 land in the `mnc-perf` record as gated
//! `served.estimate.*_ns` metrics, so a regression in the service path —
//! routing, admission, session locking, the walk — trips the same CI gate
//! as a kernel regression.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use mnc_matrix::{gen, CsrMatrix};
use mnc_served::{serve_with, EstimationService, ServeOptions, ServedConfig};
use rand::SeedableRng;

/// Aggregated result of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Median request latency (nanoseconds, full HTTP round trip).
    pub p50_ns: f64,
    /// 99th-percentile request latency.
    pub p99_ns: f64,
    /// Median admission-queue wait, measured service-side by the trace
    /// plane (0 on the uncontended fast path).
    pub queue_wait_p50_ns: f64,
    /// 99th-percentile admission-queue wait.
    pub queue_wait_p99_ns: f64,
    /// Median service time (request total minus queue wait), service-side.
    pub service_p50_ns: f64,
    /// 99th-percentile service time.
    pub service_p99_ns: f64,
    /// Requests completed with HTTP 200.
    pub ok: u64,
    /// Requests answered with any other status (including 429 sheds).
    pub errors: u64,
    /// Requests sampled by the shadow plane (the run drives rate 1.0, so
    /// this should match `ok`).
    pub shadow_sampled: u64,
    /// Shadow jobs fully processed by the background workers.
    pub shadow_completed: u64,
    /// Shadow jobs shed by the bounded queue under load.
    pub shadow_dropped: u64,
    /// Fraction of sampled shadow jobs that were shed (0 when none sampled).
    pub shadow_drop_rate: f64,
    /// 99th-percentile background shadow-run latency (worst across the
    /// alternate estimators; informational, off the request path).
    pub shadow_p99_ns: f64,
}

/// Minimal blocking HTTP exchange; returns the status code.
fn roundtrip(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: perf\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head = std::str::from_utf8(&raw)
        .ok()
        .and_then(|t| t.lines().next())
        .unwrap_or("");
    head.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))
}

fn csr_json(m: &CsrMatrix) -> String {
    let ptr = m
        .row_ptr()
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let idx = m
        .col_indices()
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"nrows\":{},\"ncols\":{},\"row_ptr\":[{}],\"col_idx\":[{}]}}",
        m.nrows(),
        m.ncols(),
        ptr,
        idx
    )
}

/// Runs the load: `clients` concurrent sessions, `requests` estimates each,
/// over a `(A B) C` chain sized by `scale`.
pub fn run_load(scale: f64, clients: usize, requests: usize) -> LoadReport {
    let d = ((200.0 * scale) as usize).max(20);
    let dir = std::env::temp_dir().join(format!("mnc-perf-served-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = ServedConfig::new(&dir);
    cfg.workers = clients.max(1);
    cfg.queue = clients * 2;
    // Shadow every request: the load run measures the worst case for the
    // isolation contract (sampling on the hot path, shed rate under
    // contention) and feeds `served.shadow.*` into the perf record.
    cfg.shadow_rate = 1.0;
    let service = EstimationService::new(cfg).expect("served: open catalog");
    let handle = serve_with(service.clone(), "127.0.0.1:0", ServeOptions::default())
        .expect("served: bind loopback");
    let addr = handle.local_addr().to_string();

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5E2D);
    let a = gen::rand_uniform(&mut rng, d, d, 0.05);
    let b = gen::rand_uniform(&mut rng, d, d, 0.05);
    let c = gen::rand_uniform(&mut rng, d, d, 0.05);
    for (name, m) in [("A", &a), ("B", &b), ("C", &c)] {
        let status = roundtrip(
            &addr,
            "PUT",
            &format!("/v1/matrices/{name}"),
            csr_json(m).as_bytes(),
        )
        .expect("served: ingest");
        assert_eq!(status, 201, "served: ingest {name} failed");
    }

    let results: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|scope| {
        let addr: &str = &addr;
        (0..clients)
            .map(|cid| {
                scope.spawn(move || {
                    let req = format!(
                        r#"{{"client":"load-{cid}","dag":[{{"leaf":"A"}},{{"leaf":"B"}},{{"leaf":"C"}},
                        {{"op":"matmul","inputs":[0,1]}},{{"op":"matmul","inputs":[3,2]}}]}}"#
                    );
                    let mut lat = Vec::with_capacity(requests);
                    let (mut ok, mut errors) = (0u64, 0u64);
                    for _ in 0..requests {
                        let t = Instant::now();
                        match roundtrip(addr, "POST", "/v1/estimate", req.as_bytes()) {
                            Ok(200) => {
                                lat.push(t.elapsed().as_nanos() as u64);
                                ok += 1;
                            }
                            _ => errors += 1,
                        }
                    }
                    (lat, ok, errors)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load client"))
            .collect()
    });
    // Service-side latency split: the trace plane's RED histograms separate
    // time queued at the admission gate from time actually serving.
    let (qw, sv) = {
        let snap = service
            .trace_plane()
            .metrics_snapshot()
            .expect("tracing is on by default");
        let histo_quantiles = |name: &str| -> (f64, f64) {
            snap.histograms
                .get(name)
                .map(|h| (h.quantile(0.50) as f64, h.quantile(0.99) as f64))
                .unwrap_or((0.0, 0.0))
        };
        (
            histo_quantiles("served.queue_wait_ns{endpoint=/v1/estimate}"),
            histo_quantiles("served.service_ns{endpoint=/v1/estimate}"),
        )
    };
    // Shadow scoreboard: let the background workers finish the queued jobs
    // (the drain is test/bench support — production never waits), then read
    // the counters and the worst per-estimator latency p99.
    let shadow = service.shadow_plane();
    shadow.drain();
    let (sh_sampled, sh_completed, sh_dropped) =
        (shadow.sampled(), shadow.completed(), shadow.dropped());
    let sh_p99 = shadow
        .metrics_snapshot()
        .map(|snap| {
            snap.histograms
                .iter()
                .filter(|(name, _)| name.starts_with("shadow.latency_ns"))
                .map(|(_, h)| h.quantile(0.99))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0) as f64;
    drop(service);
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);

    let mut lat: Vec<u64> = results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    lat.sort_unstable();
    let q = |q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx.min(lat.len() - 1)] as f64
    };
    LoadReport {
        p50_ns: q(0.50),
        p99_ns: q(0.99),
        queue_wait_p50_ns: qw.0,
        queue_wait_p99_ns: qw.1,
        service_p50_ns: sv.0,
        service_p99_ns: sv.1,
        ok: results.iter().map(|(_, ok, _)| ok).sum(),
        errors: results.iter().map(|(_, _, e)| e).sum(),
        shadow_sampled: sh_sampled,
        shadow_completed: sh_completed,
        shadow_dropped: sh_dropped,
        shadow_drop_rate: if sh_sampled == 0 {
            0.0
        } else {
            sh_dropped as f64 / sh_sampled as f64
        },
        shadow_p99_ns: sh_p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_run_completes_cleanly() {
        let report = run_load(0.1, 2, 5);
        assert_eq!(report.ok, 10);
        assert_eq!(report.errors, 0);
        assert!(report.p50_ns > 0.0);
        assert!(report.p99_ns >= report.p50_ns);
        // Service-side split: service time is real work (positive) and the
        // split can never exceed the full client round trip.
        assert!(report.service_p50_ns > 0.0);
        assert!(report.service_p99_ns >= report.service_p50_ns);
        assert!(report.queue_wait_p99_ns >= report.queue_wait_p50_ns);
        assert!(report.service_p50_ns <= report.p99_ns);
        // The shadow plane sampled every 200 and accounted for each job —
        // completed plus shed, never lost.
        assert_eq!(report.shadow_sampled, report.ok);
        assert_eq!(
            report.shadow_completed + report.shadow_dropped,
            report.shadow_sampled
        );
        assert!((0.0..=1.0).contains(&report.shadow_drop_rate));
        if report.shadow_completed > 0 {
            assert!(report.shadow_p99_ns > 0.0);
        }
    }
}
