//! Table 2: overview of the SparsEst benchmark use cases — expressions and
//! data sources, printed from the actual use-case constructors (ids, names,
//! DAG sizes, root shapes) so the table cannot drift from the code.

use mnc_bench::{banner, print_table};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::usecases::{b1_suite, b2_suite, b3_suite};

fn main() {
    banner(
        "Table 2",
        "Overview of Benchmark Use Cases",
        "Expressions as implemented (tiny scale for this structural print).",
    );
    let expressions = [
        ("B1.1", "X W"),
        ("B1.2", "diag(λ) X"),
        ("B1.3", "table(s1, s2) X"),
        ("B1.4", "C R"),
        ("B1.5", "R C"),
        ("B2.1", "X W"),
        ("B2.2", "X P"),
        ("B2.3", "G Gᵀ"),
        ("B2.4", "G G"),
        ("B2.5", "M ⊙ X"),
        ("B3.1", "reshape(X W)"),
        ("B3.2", "Sᵀ Xᵀ diag(w) X S B"),
        ("B3.3", "P G G G G"),
        ("B3.4", "(P X != 0) ⊙ (P L Rᵀ)"),
        ("B3.5", "X ⊙ ((R ⊙ S + T) != 0)"),
    ];
    let data = Datasets::with_scale(1, 0.01);
    let mut cases = b1_suite(0.002, 1);
    cases.extend(b2_suite(&data));
    cases.extend(b3_suite(&data));

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            let expr = expressions
                .iter()
                .find(|(id, _)| *id == c.id)
                .map(|(_, e)| *e)
                .unwrap_or("?");
            let (r, k) = c.dag.shape(c.root);
            vec![
                c.id.clone(),
                c.name.clone(),
                expr.to_string(),
                format!("{} nodes", c.dag.len()),
                format!("{r}x{k}"),
                if c.tracked.is_empty() {
                    String::new()
                } else {
                    format!("{} tracked intermediates", c.tracked.len())
                },
            ]
        })
        .collect();
    print_table(
        &["id", "name", "expression", "DAG", "output", "notes"],
        &rows,
    );
}
