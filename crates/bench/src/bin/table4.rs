//! Table 4 (Appendix A): accuracy of the sampling-based estimators —
//! biased (Eq. 5), unbiased (Eq. 16), hash-based — against MNC, on all
//! single-operation use cases B1.1–B2.5.

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::{
    BiasedSamplingEstimator, HashEstimator, MncEstimator, SparsityEstimator,
    UnbiasedSamplingEstimator,
};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::run_case;
use mnc_sparsest::usecases::{b1_suite, b2_suite};

fn main() {
    let scale = env_scale(0.1);
    banner(
        "Table 4",
        "Accuracy of Sampling-based Estimators",
        "Cells are relative errors; INF marks sampling misses (paper: \
         Biased INF on B1.4/B2.2, Unbiased INF on B1.4, Hash INF on B1.5, \
         Hash N/A on B2.5).",
    );
    let biased = BiasedSamplingEstimator::default();
    let unbiased = UnbiasedSamplingEstimator::default();
    let hash = HashEstimator::default();
    let mnc = MncEstimator::new();
    let refs: Vec<&dyn SparsityEstimator> = vec![&biased, &unbiased, &hash, &mnc];
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    let mut results = Vec::new();
    for case in b1_suite(scale, 42) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case(&case, &refs));
    }
    let data = Datasets::with_scale(0xDA7A, env_scale(1.0).min(1.0));
    for case in b2_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case(&case, &refs));
    }
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "paper reference (Biased / Unbiased / Hash / MNC): B1.1 84.0 / 1.55 \
         / 1.78 / 1.0; B1.2 53,560 / 1.01 / 1.13 / 1.0; B1.3 92,535 / 1.27 \
         / 1.17 / 1.0; B1.4 INF / INF / 1.0 / 1.0; B1.5 1.0 / 99,999 / INF \
         / 1.0; B2.1 44.2 / 1.60 / 1.10 / 1.0; B2.2 INF / 2.95 / 1.45 / \
         1.0; B2.3 54.4 / 1.80 / 1.04 / 1.17; B2.4 91.8 / 1.37 / 1.01 / \
         1.09; B2.5 1.76 / 1.76 / N/A / 1.0."
    );
}
