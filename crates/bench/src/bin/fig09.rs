//! Figure 9: analytical synopsis size overhead.
//!
//! (a) constant dimensions m = n = 1M, sparsity swept over [1e-8, 1];
//! (b) constant non-zeros (1G), dimension swept over [1e5, 1e9].
//!
//! These are pure formulas (the paper's own analysis), so the *exact* paper
//! parameters are used — no scaling needed.

use mnc_bench::{banner, print_table};
use mnc_estimators::analysis::synopsis_sizes;

fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.3} {}", UNITS[u])
}

fn main() {
    banner(
        "Figure 9(a)",
        "Synopsis size, m = n = 1M, varying sparsity",
        "Paper anchors: MNC 16 MB of count vectors (32 MB with extended \
         vectors), bitset 125 GB, density map 122 MB at b = 256.",
    );
    let (m, n) = (1e6, 1e6);
    let rows: Vec<Vec<String>> = [1e-8, 1e-6, 1e-4, 1e-2, 1.0]
        .iter()
        .map(|&s| {
            let nnz = s * m * n;
            let z = synopsis_sizes(m, n, nnz, 256.0, 32.0);
            vec![
                format!("{s:.0e}"),
                fmt_bytes(z.bitset),
                fmt_bytes(z.layered_graph),
                fmt_bytes(z.density_map),
                fmt_bytes(z.mnc),
            ]
        })
        .collect();
    print_table(&["sparsity", "Bitset", "LGraph", "DMap", "MNC"], &rows);

    println!();
    banner(
        "Figure 9(b)",
        "Synopsis size, nnz = 1G, varying dimension N (square)",
        "Expected shape: bitset/density map grow quadratically with N; MNC \
         stays linear; LGraph is edge-dominated until nodes take over.",
    );
    let rows: Vec<Vec<String>> = [1e5, 1e6, 1e7, 1e8, 1e9]
        .iter()
        .map(|&d| {
            let z = synopsis_sizes(d, d, 1e9, 256.0, 32.0);
            vec![
                format!("{d:.0e}"),
                fmt_bytes(z.bitset),
                fmt_bytes(z.layered_graph),
                fmt_bytes(z.density_map),
                fmt_bytes(z.mnc),
            ]
        })
        .collect();
    print_table(&["dimension", "Bitset", "LGraph", "DMap", "MNC"], &rows);
}
