//! Demonstrates the `EstimationContext` win on repeated estimation: an
//! optimizer-style workload keeps re-estimating DAGs built over one shared
//! set of base matrices (probing rewrites, re-costing plans). Without a
//! session every walk rebuilds every leaf synopsis; with one, leaves are
//! built once and intermediates of repeated DAGs come from the cache.
//!
//! ```text
//! MNC_SCALE=1.0 MNC_REPS=20 cargo run --release --bin cache_bench
//! ```
//!
//! Human-readable results go to stderr; stdout carries one stable-schema
//! JSON object (`"schema": "mnc.cache_bench.v1"`) so CI and scripts can
//! consume the numbers without scraping tables.
//!
//! `--check-overhead` additionally times the cached loop with no recorder,
//! with the no-op disabled recorder, with tracing enabled, and with the
//! live obsd service attached but idle (endpoint up, flight ring
//! allocated, recorder off — the production always-on configuration)
//! (best-of-rounds, rotating order). It fails if the no-op recorder is
//! more than 2% slower than the recorder-free baseline, if the idle obsd
//! variant is more than 2% slower than the no-op recorder, or if any
//! variant changes an estimate — observability off must be effectively
//! free and always passive. The enabled-tracing ratio is reported for
//! information.
//!
//! The same flag also gates the **served request-tracing plane**: two
//! in-process `mnc-served` services (tracing on vs off) answer identical
//! estimate batches through direct handler calls; tracing must stay within
//! 2% on the p50 batch time and every response body must be byte-identical.
//!
//! And the **shadow estimation plane**: three in-process services — default
//! config, explicit `--shadow-rate 0`, and `--shadow-rate 1` — answer the
//! same batches; the rate-0 floor must stay within 2% of the baseline (the
//! disabled plane is one branch per request) and every response body must
//! be byte-identical across all three (shadowing may never change what the
//! client sees). The rate-1 ratio is reported for information.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mnc_bench::{env_reps, env_scale, fmt_duration, EnvInfo, ObsArgs, OBS_USAGE};
use mnc_estimators::MncEstimator;
use mnc_expr::{estimate_root, EstimationContext, ExprDag, NodeId, Planner, Recorder};
use mnc_matrix::{gen, CsrMatrix};
use mnc_obsd::{Handler, ObsDaemon, ObsdConfig, Request};
use mnc_served::{EstimationService, ServedConfig};
use rand::SeedableRng;

/// The shared base matrices: a product-chain-friendly set with one skewed
/// ultra-sparse member, as in the chain experiments.
fn base_matrices(scale: f64) -> Vec<Arc<CsrMatrix>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAC4E);
    let d = (1200.0 * scale).max(40.0) as usize;
    let sparsities = [0.01, 0.001, 0.02, 0.005];
    sparsities
        .iter()
        .map(|&s| Arc::new(gen::rand_uniform(&mut rng, d, d, s)))
        .collect()
}

/// One optimizer probe: a fresh DAG over the shared leaves — alternating
/// left-deep and right-deep parenthesizations so intermediate synopses
/// differ across probes while the leaves repeat.
fn probe_dag(mats: &[Arc<CsrMatrix>], probe: usize) -> (ExprDag, NodeId) {
    let mut dag = ExprDag::new();
    let leaves: Vec<NodeId> = mats
        .iter()
        .enumerate()
        .map(|(i, m)| dag.leaf(format!("M{i}"), Arc::clone(m)))
        .collect();
    let root = if probe.is_multiple_of(2) {
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = dag.matmul(acc, l).expect("chain shapes agree");
        }
        acc
    } else {
        let mut acc = *leaves.last().expect("non-empty");
        for &l in leaves[..leaves.len() - 1].iter().rev() {
            acc = dag.matmul(l, acc).expect("chain shapes agree");
        }
        acc
    };
    (dag, root)
}

/// Runs the cached estimation loop in a fresh session — plain when `rec` is
/// `None`, attached to the given recorder otherwise — returning the wall
/// time and the sum of estimates (for bit-identity checks across variants).
fn cached_loop(
    dags: &[(ExprDag, NodeId)],
    reps: usize,
    rec: Option<Recorder>,
) -> (Duration, f64, EstimationContext) {
    let t = Instant::now();
    let mut sum = 0.0;
    let est = MncEstimator::new();
    let mut ctx = match rec {
        Some(rec) => EstimationContext::new().with_recorder(rec),
        None => EstimationContext::new(),
    };
    for rep in 0..reps {
        let (dag, root) = &dags[rep % dags.len()];
        sum += ctx.estimate_root(&est, dag, *root).expect("estimate");
    }
    (t.elapsed(), sum, ctx)
}

/// Overhead measurement across the four session variants.
struct Overhead {
    /// Plain session, no recorder ever attached (the baseline).
    plain: Duration,
    /// Session with the no-op disabled recorder attached — the variant the
    /// ≤2% gate applies to ("compile-out cheap").
    noop: Duration,
    /// Session with an enabled recorder collecting spans and metrics —
    /// reported for information, not gated.
    traced: Duration,
    /// Session with the no-op recorder wired into a live [`ObsDaemon`]:
    /// HTTP endpoint bound, ticker refreshing, flight ring allocated but
    /// idle. The production always-on service configuration — gated at ≤2%
    /// of the no-op recorder.
    obsd: Duration,
    /// Whether all four variants produced bit-identical estimate sums.
    identical: bool,
}

/// Best-of-`rounds` timing of the cached loop across the four variants,
/// rotating the order so cache warmth and frequency scaling cancel out.
/// Each sample times `inner` back-to-back loops: single loops finish in
/// well under a millisecond, where scheduler jitter alone exceeds the 2%
/// bound this measurement gates on. One daemon with a live endpoint is
/// shared across the whole measurement, so the obsd variant pays exactly
/// what a long-running service pays: an installed sink and background
/// threads, not server start-up.
fn measure_overhead(
    dags: &[(ExprDag, NodeId)],
    reps: usize,
    rounds: usize,
    inner: usize,
) -> Overhead {
    let daemon = ObsDaemon::new(ObsdConfig::default());
    let mut server = daemon
        .serve("127.0.0.1:0")
        .expect("bind overhead-check endpoint on loopback");
    let sample = |variant: usize| -> (Duration, f64) {
        let mut total = Duration::ZERO;
        let mut sum = 0.0;
        for _ in 0..inner {
            let rec = match variant {
                0 => None,
                1 => Some(Recorder::disabled()),
                2 => Some(Recorder::enabled()),
                _ => {
                    let rec = Recorder::disabled();
                    daemon.install(&rec);
                    Some(rec)
                }
            };
            let (took, s, _ctx) = cached_loop(dags, reps, rec);
            total += took;
            sum += s;
        }
        (total, sum)
    };
    // Warm-up: populate allocator pools and caches outside the measurement.
    for v in 0..4 {
        sample(v);
    }
    let mut best = [Duration::MAX; 4];
    let mut identical = true;
    for round in 0..rounds {
        let mut sums = [0.0f64; 4];
        for i in 0..4 {
            let v = (round + i) % 4;
            let (took, sum) = sample(v);
            best[v] = best[v].min(took);
            sums[v] = sum;
        }
        identical &= sums[1..].iter().all(|s| s.to_bits() == sums[0].to_bits());
    }
    server.shutdown();
    Overhead {
        plain: best[0],
        noop: best[1],
        traced: best[2],
        obsd: best[3],
        identical,
    }
}

/// The served-plane side of the overhead gate: request tracing (trace IDs,
/// stage spans, RED metrics) measured across two in-process services —
/// tracing on vs off — driven through direct [`Handler::handle`] calls so
/// no socket noise lands in the measurement.
struct ServedOverhead {
    /// Fastest observed request, tracing off (best-of floor, like
    /// [`measure_overhead`]: the minimum is the noise-free estimate of the
    /// deterministic work, and the plane's cost is deterministic work).
    plain_floor: Duration,
    /// Fastest observed request, tracing on.
    traced_floor: Duration,
    /// Whether both variants produced byte-identical estimate bodies.
    identical: bool,
}

fn served_request(method: &str, path: &str, body: &[u8]) -> Request {
    Request {
        method: method.into(),
        path: path.into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.to_vec(),
    }
}

/// Raw-CSR ingest body for the in-process served harnesses.
fn csr_json(m: &CsrMatrix) -> String {
    fn join<T: ToString>(xs: &[T]) -> String {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
    format!(
        "{{\"nrows\":{},\"ncols\":{},\"row_ptr\":[{}],\"col_idx\":[{}]}}",
        m.nrows(),
        m.ncols(),
        join(m.row_ptr()),
        join(m.col_indices())
    )
}

/// `samples` `POST /v1/estimate` calls per variant over identical catalogs,
/// timed **per request and strictly interleaved** (the variant order flips
/// every iteration); the gate compares the best-of floors. Interleaving at
/// request granularity matters: batch-level timings on a shared single-CPU
/// box swing ±8% from time-correlated noise, and even medians drift with
/// sustained background load, while the fastest request out of hundreds is
/// a stable estimate of the deterministic per-request work — which is
/// exactly where a tracing plane's cost lives. The matrix dimension floors
/// at a representative request size: the plane costs a fixed few hundred
/// nanoseconds per request, and gating a 2% ratio against a degenerate
/// microsecond-sized walk would measure clock reads, not the plane.
fn measure_served_overhead(scale: f64, samples: usize) -> ServedOverhead {
    let d = ((200.0 * scale) as usize).max(1536);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0BE4);
    let mats: Vec<CsrMatrix> = (0..3)
        .map(|_| gen::rand_uniform(&mut rng, d, d, 0.05))
        .collect();

    let mk_service = |tracing: bool, tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "mnc-cache-bench-served-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServedConfig::new(&dir);
        cfg.tracing = tracing;
        let svc = EstimationService::new(cfg).expect("served: open catalog");
        for (i, m) in mats.iter().enumerate() {
            let req = served_request("PUT", &format!("/v1/matrices/M{i}"), csr_json(m).as_bytes());
            assert_eq!(svc.handle(&req).status, 201, "served: ingest M{i}");
        }
        (svc, dir)
    };
    let (plain_svc, plain_dir) = mk_service(false, "plain");
    let (traced_svc, traced_dir) = mk_service(true, "traced");

    let estimate = br#"{"dag":[{"leaf":"M0"},{"leaf":"M1"},{"leaf":"M2"},
        {"op":"matmul","inputs":[0,1]},{"op":"matmul","inputs":[3,2]}]}"#;
    let one = |svc: &EstimationService| -> (Duration, Vec<u8>) {
        let t = Instant::now();
        let resp = svc.handle(&served_request("POST", "/v1/estimate", estimate));
        let took = t.elapsed();
        assert_eq!(resp.status, 200, "served: estimate failed");
        (took, resp.body)
    };

    // Warm-up both variants: session caches, trace-plane pools, allocator.
    let mut identical = true;
    for _ in 0..16 {
        let (_, body_plain) = one(&plain_svc);
        let (_, body_traced) = one(&traced_svc);
        identical &= body_plain == body_traced;
    }

    let mut plain = Vec::with_capacity(samples);
    let mut traced = Vec::with_capacity(samples);
    for i in 0..samples {
        // Flip the order each iteration so frequency scaling and cache
        // warmth cancel out.
        let (pl, tr) = if i % 2 == 0 {
            let pl = one(&plain_svc);
            let tr = one(&traced_svc);
            (pl, tr)
        } else {
            let tr = one(&traced_svc);
            let pl = one(&plain_svc);
            (pl, tr)
        };
        identical &= pl.1 == tr.1;
        plain.push(pl.0);
        traced.push(tr.0);
    }
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&traced_dir);

    let floor = |ds: &[Duration]| ds.iter().copied().min().unwrap_or_default();
    ServedOverhead {
        plain_floor: floor(&plain),
        traced_floor: floor(&traced),
        identical,
    }
}

/// The shadow-plane side of the overhead gate.
struct ShadowOverhead {
    /// Fastest request against the default-config service (shadow never
    /// configured — the pre-shadow baseline).
    base_floor: Duration,
    /// Fastest request with `--shadow-rate 0` set explicitly. Gated at ≤2%
    /// of the baseline: a rate-0 plane must cost exactly one branch per
    /// request, nothing else.
    off_floor: Duration,
    /// Fastest request with `--shadow-rate 1`. Informational only: the
    /// background workers legitimately compete for CPU — the isolation
    /// contract is about response bytes and the rate-0 hot path, not about
    /// free re-estimation.
    on_floor: Duration,
    /// Whether all three variants produced byte-identical response bodies —
    /// shadowing on must never change what the client sees.
    identical: bool,
}

/// Three in-process services — default config, explicit shadow rate 0, and
/// shadow rate 1 — answer identical estimate batches through direct handler
/// calls, timed per request and strictly interleaved with a rotating order,
/// exactly like [`measure_served_overhead`]. Raw-CSR ingest means the
/// rate-1 service carries live sidecars, so its background jobs run all
/// three alternate estimators while the foreground is being timed (the
/// worst case for interference — which is why only the rate-0 ratio is
/// gated).
fn measure_shadow_overhead(scale: f64, samples: usize) -> ShadowOverhead {
    let d = ((200.0 * scale) as usize).max(1024);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x54AD);
    let mats: Vec<CsrMatrix> = (0..3)
        .map(|_| gen::rand_uniform(&mut rng, d, d, 0.05))
        .collect();

    let mk_service = |shadow_rate: Option<f64>, tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "mnc-cache-bench-shadow-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServedConfig::new(&dir);
        if let Some(rate) = shadow_rate {
            cfg.shadow_rate = rate;
        }
        let svc = EstimationService::new(cfg).expect("served: open catalog");
        for (i, m) in mats.iter().enumerate() {
            let req = served_request("PUT", &format!("/v1/matrices/M{i}"), csr_json(m).as_bytes());
            assert_eq!(svc.handle(&req).status, 201, "served: ingest M{i}");
        }
        (svc, dir)
    };
    let services = [
        mk_service(None, "base"),
        mk_service(Some(0.0), "off"),
        mk_service(Some(1.0), "on"),
    ];

    let estimate = br#"{"dag":[{"leaf":"M0"},{"leaf":"M1"},{"leaf":"M2"},
        {"op":"matmul","inputs":[0,1]},{"op":"matmul","inputs":[3,2]}]}"#;
    let one = |svc: &EstimationService| -> (Duration, Vec<u8>) {
        let t = Instant::now();
        let resp = svc.handle(&served_request("POST", "/v1/estimate", estimate));
        let took = t.elapsed();
        assert_eq!(resp.status, 200, "served: estimate failed");
        (took, resp.body)
    };

    let mut identical = true;
    for _ in 0..16 {
        let bodies: Vec<Vec<u8>> = services.iter().map(|(svc, _)| one(svc).1).collect();
        identical &= bodies[1..].iter().all(|b| *b == bodies[0]);
    }

    let mut floors = [Duration::MAX; 3];
    for i in 0..samples {
        let mut bodies: [Option<Vec<u8>>; 3] = [None, None, None];
        for k in 0..3 {
            let v = (i + k) % 3;
            let (took, body) = one(&services[v].0);
            floors[v] = floors[v].min(took);
            bodies[v] = Some(body);
        }
        let b0 = bodies[0].take().expect("base body collected");
        identical &= bodies[1..]
            .iter()
            .all(|b| b.as_deref() == Some(b0.as_slice()));
    }

    // Dropping the rate-1 service joins its workers after the queue drains.
    for (svc, dir) in services {
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }
    ShadowOverhead {
        base_floor: floors[0],
        off_floor: floors[1],
        on_floor: floors[2],
        identical,
    }
}

/// The timeline-plane side of the overhead gate.
struct TimelineOverhead {
    /// Fastest request with the timeline plane disabled (`--timeline-capacity 0`).
    off_floor: Duration,
    /// Fastest request with the default timeline (360 frames, SLO engine
    /// live). Gated at ≤2% of the disabled floor: the sampler runs on the
    /// obsd ticker thread once a second, so the request path must pay
    /// nothing beyond the metric recording it already does.
    on_floor: Duration,
    /// Whether both variants produced byte-identical response bodies.
    identical: bool,
}

/// Two in-process services — timeline disabled vs the default-on plane —
/// answer identical estimate batches, timed per request and strictly
/// interleaved with a flipping order, exactly like
/// [`measure_served_overhead`].
fn measure_timeline_overhead(scale: f64, samples: usize) -> TimelineOverhead {
    let d = ((200.0 * scale) as usize).max(1024);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7133);
    let mats: Vec<CsrMatrix> = (0..3)
        .map(|_| gen::rand_uniform(&mut rng, d, d, 0.05))
        .collect();

    let mk_service = |capacity: usize, tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "mnc-cache-bench-timeline-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServedConfig::new(&dir);
        cfg.timeline_capacity = capacity;
        let svc = EstimationService::new(cfg).expect("served: open catalog");
        for (i, m) in mats.iter().enumerate() {
            let req = served_request("PUT", &format!("/v1/matrices/M{i}"), csr_json(m).as_bytes());
            assert_eq!(svc.handle(&req).status, 201, "served: ingest M{i}");
        }
        (svc, dir)
    };
    let (off_svc, off_dir) = mk_service(0, "off");
    let (on_svc, on_dir) = mk_service(360, "on");

    let estimate = br#"{"dag":[{"leaf":"M0"},{"leaf":"M1"},{"leaf":"M2"},
        {"op":"matmul","inputs":[0,1]},{"op":"matmul","inputs":[3,2]}]}"#;
    let one = |svc: &EstimationService| -> (Duration, Vec<u8>) {
        let t = Instant::now();
        let resp = svc.handle(&served_request("POST", "/v1/estimate", estimate));
        let took = t.elapsed();
        assert_eq!(resp.status, 200, "served: estimate failed");
        (took, resp.body)
    };

    let mut identical = true;
    for _ in 0..16 {
        let (_, body_off) = one(&off_svc);
        let (_, body_on) = one(&on_svc);
        identical &= body_off == body_on;
    }

    let mut floors = [Duration::MAX; 2];
    for i in 0..samples {
        let ((off_t, off_b), (on_t, on_b)) = if i % 2 == 0 {
            let off = one(&off_svc);
            let on = one(&on_svc);
            (off, on)
        } else {
            let on = one(&on_svc);
            let off = one(&off_svc);
            (off, on)
        };
        identical &= off_b == on_b;
        floors[0] = floors[0].min(off_t);
        floors[1] = floors[1].min(on_t);
    }
    let _ = std::fs::remove_dir_all(&off_dir);
    let _ = std::fs::remove_dir_all(&on_dir);

    TimelineOverhead {
        off_floor: floors[0],
        on_floor: floors[1],
        identical,
    }
}

fn json_field(name: &str, v: f64) -> String {
    if v.is_finite() {
        format!("\"{name}\": {v}")
    } else {
        format!("\"{name}\": null")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs, rest) = match ObsArgs::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\nusage: cache_bench [--check-overhead] {OBS_USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut check_overhead = false;
    for a in &rest {
        match a.as_str() {
            "--check-overhead" => check_overhead = true,
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: cache_bench [--check-overhead] {OBS_USAGE}"
                );
                return ExitCode::from(2);
            }
        }
    }

    let scale = env_scale(1.0);
    let reps = env_reps(20);
    // Stdout carries only the JSON record; the banner goes to stderr.
    eprintln!("================================================================");
    eprintln!("cache — EstimationContext: repeated estimation with and without a session");
    eprintln!("{reps} optimizer probes over 4 shared base matrices, scale {scale}.");
    eprintln!("================================================================");

    let mats = base_matrices(scale);
    // The probes re-use two DAG structures; estimating each probe with a
    // session costs at most two propagation walks plus cache lookups.
    let dags: Vec<(ExprDag, NodeId)> = (0..2).map(|p| probe_dag(&mats, p)).collect();

    // Uncached: every probe builds all leaf synopses from scratch.
    let t = Instant::now();
    let mut uncached_sum = 0.0;
    for rep in 0..reps {
        let est = MncEstimator::new();
        let (dag, root) = &dags[rep % dags.len()];
        uncached_sum += estimate_root(&est, dag, *root).expect("estimate");
    }
    let uncached = t.elapsed();

    // Cached: one session across all probes, recorder per the obs flags.
    let (cached, cached_sum, mut ctx) = cached_loop(&dags, reps, Some(obs.recorder()));

    // Planner re-costing rides the same session: plans hit warm synopses.
    let est = MncEstimator::new();
    let t = Instant::now();
    let plan = Planner::default()
        .plan_with_context(&est, &dags[0].0, &mut ctx)
        .expect("plan");
    let plan_time = t.elapsed();

    let stats = ctx.stats().clone();
    eprintln!(
        "uncached: {:>10}   ({} probes, mean estimate {:.3e})",
        fmt_duration(uncached),
        reps,
        uncached_sum / reps as f64
    );
    eprintln!(
        "cached  : {:>10}   ({} probes, mean estimate {:.3e})",
        fmt_duration(cached),
        reps,
        cached_sum / reps as f64
    );
    eprintln!(
        "speedup : {:>9.1}x   hit rate {:.0}%",
        uncached.as_secs_f64() / cached.as_secs_f64().max(1e-9),
        stats.hit_rate() * 100.0
    );
    eprintln!(
        "warm re-plan of probe 0: {} (total estimated FLOPs {:.3e})",
        fmt_duration(plan_time),
        plan.total_flops
    );
    eprintln!("\nestimation session:\n{stats}");

    // Observability export (Chrome trace / report) when flags asked for one.
    // The report goes to --metrics or, with an explicit --obs-format and no
    // file, to stderr — stdout is reserved for the stable JSON record below.
    if obs.enabled() {
        let rec = ctx.recorder().clone();
        if let Some(path) = &obs.trace {
            if let Err(e) = std::fs::write(path, rec.report().to_chrome_trace()) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
        let rendered = rec.report().render(obs.format);
        if let Some(path) = &obs.metrics {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {:?} report to {path}", obs.format);
        } else if obs.format_explicit {
            eprint!("{rendered}");
            if !rendered.ends_with('\n') {
                eprintln!();
            }
        }
    }

    // Optional overhead gate: the no-op disabled recorder must stay within
    // 2% of a recorder-free session ("compile-out cheap"), the idle obsd
    // service within 2% of the no-op recorder ("always-on is free"), and
    // no variant may perturb any estimate. The cost of *enabled* tracing
    // is measured and reported but not gated — it depends on how much of
    // the workload is real synopsis work vs cache lookups.
    // The served plane rides the same flag: request tracing on vs off across
    // two in-process services must stay within 2% on the per-request p50 and
    // produce byte-identical estimate bodies.
    let mut overhead_json = "\"overhead\": null".to_string();
    let mut overhead_ok = true;
    if check_overhead {
        let o = measure_overhead(&dags, reps, 7, 10);
        let so = measure_served_overhead(scale, 225);
        let sh = measure_shadow_overhead(scale, 150);
        let tl = measure_timeline_overhead(scale, 150);
        let plain = o.plain.as_secs_f64().max(1e-12);
        let noop = o.noop.as_secs_f64().max(1e-12);
        let noop_ratio = o.noop.as_secs_f64() / plain;
        let traced_ratio = o.traced.as_secs_f64() / plain;
        let obsd_ratio = o.obsd.as_secs_f64() / noop;
        let served_ratio = so.traced_floor.as_secs_f64() / so.plain_floor.as_secs_f64().max(1e-12);
        let shadow_base = sh.base_floor.as_secs_f64().max(1e-12);
        let shadow_off_ratio = sh.off_floor.as_secs_f64() / shadow_base;
        let shadow_on_ratio = sh.on_floor.as_secs_f64() / shadow_base;
        let timeline_ratio = tl.on_floor.as_secs_f64() / tl.off_floor.as_secs_f64().max(1e-12);
        overhead_ok = noop_ratio <= 1.02
            && obsd_ratio <= 1.02
            && o.identical
            && served_ratio <= 1.02
            && so.identical
            && shadow_off_ratio <= 1.02
            && sh.identical
            && timeline_ratio <= 1.02
            && tl.identical;
        eprintln!(
            "overhead: plain {} | no-op recorder {} (ratio {:.4}, limit 1.02) | idle obsd {} (ratio vs no-op {:.4}, limit 1.02) | traced {} (ratio {:.4}, informational), estimates identical: {}",
            fmt_duration(o.plain),
            fmt_duration(o.noop),
            noop_ratio,
            fmt_duration(o.obsd),
            obsd_ratio,
            fmt_duration(o.traced),
            traced_ratio,
            o.identical
        );
        eprintln!(
            "served plane: tracing off floor {} | tracing on floor {} (ratio {:.4}, limit 1.02), estimate bodies identical: {}",
            fmt_duration(so.plain_floor),
            fmt_duration(so.traced_floor),
            served_ratio,
            so.identical
        );
        eprintln!(
            "shadow plane: baseline floor {} | rate 0 floor {} (ratio {:.4}, limit 1.02) | rate 1 floor {} (ratio {:.4}, informational), response bodies identical: {}",
            fmt_duration(sh.base_floor),
            fmt_duration(sh.off_floor),
            shadow_off_ratio,
            fmt_duration(sh.on_floor),
            shadow_on_ratio,
            sh.identical
        );
        eprintln!(
            "timeline plane: disabled floor {} | default-on floor {} (ratio {:.4}, limit 1.02), response bodies identical: {}",
            fmt_duration(tl.off_floor),
            fmt_duration(tl.on_floor),
            timeline_ratio,
            tl.identical
        );
        overhead_json = format!(
            "\"overhead\": {{{}, {}, {}, {}, {}, {}, {}, \"estimates_identical\": {}, {}, {}, {}, \"served_bodies_identical\": {}, {}, {}, {}, {}, {}, \"shadow_bodies_identical\": {}, {}, {}, {}, \"timeline_bodies_identical\": {}, \"ok\": {}}}",
            json_field("plain_s", o.plain.as_secs_f64()),
            json_field("noop_s", o.noop.as_secs_f64()),
            json_field("traced_s", o.traced.as_secs_f64()),
            json_field("obsd_s", o.obsd.as_secs_f64()),
            json_field("noop_ratio", noop_ratio),
            json_field("traced_ratio", traced_ratio),
            json_field("obsd_ratio", obsd_ratio),
            o.identical,
            json_field("served_plain_floor_s", so.plain_floor.as_secs_f64()),
            json_field("served_traced_floor_s", so.traced_floor.as_secs_f64()),
            json_field("served_traced_ratio", served_ratio),
            so.identical,
            json_field("shadow_base_floor_s", sh.base_floor.as_secs_f64()),
            json_field("shadow_off_floor_s", sh.off_floor.as_secs_f64()),
            json_field("shadow_on_floor_s", sh.on_floor.as_secs_f64()),
            json_field("shadow_off_ratio", shadow_off_ratio),
            json_field("shadow_on_ratio", shadow_on_ratio),
            sh.identical,
            json_field("timeline_off_floor_s", tl.off_floor.as_secs_f64()),
            json_field("timeline_on_floor_s", tl.on_floor.as_secs_f64()),
            json_field("timeline_ratio", timeline_ratio),
            tl.identical,
            overhead_ok
        );
    }

    // Stable-schema JSON record on stdout. Field set is append-only: tools
    // may rely on every field below existing in all future versions.
    println!(
        "{{\"schema\": \"mnc.cache_bench.v1\", \"env\": {}, {}, \"reps\": {}, {}, {}, {}, {}, \"synopses_built\": {}, \"cache_hits\": {}, \"cache_misses\": {}, {}, {}, {}}}",
        EnvInfo::capture(scale, reps).to_json(),
        json_field("scale", scale),
        reps,
        json_field("uncached_s", uncached.as_secs_f64()),
        json_field("cached_s", cached.as_secs_f64()),
        json_field(
            "speedup",
            uncached.as_secs_f64() / cached.as_secs_f64().max(1e-9)
        ),
        json_field("hit_rate", stats.hit_rate()),
        stats.builds,
        stats.cache_hits,
        stats.cache_misses,
        json_field("plan_s", plan_time.as_secs_f64()),
        json_field("plan_flops", plan.total_flops),
        overhead_json
    );

    assert!(
        stats.hit_rate() > 0.0,
        "repeated estimation must hit the cache"
    );
    if !overhead_ok {
        eprintln!("observability overhead check FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
