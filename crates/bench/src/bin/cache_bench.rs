//! Demonstrates the `EstimationContext` win on repeated estimation: an
//! optimizer-style workload keeps re-estimating DAGs built over one shared
//! set of base matrices (probing rewrites, re-costing plans). Without a
//! session every walk rebuilds every leaf synopsis; with one, leaves are
//! built once and intermediates of repeated DAGs come from the cache.
//!
//! ```text
//! MNC_SCALE=1.0 MNC_REPS=20 cargo run --release --bin cache_bench
//! ```
//!
//! Prints wall-clock for the uncached and cached runs, the cache hit rate,
//! and the session's `EstimationStats`.

use std::sync::Arc;
use std::time::Instant;

use mnc_bench::{banner, env_reps, env_scale, fmt_duration};
use mnc_estimators::MncEstimator;
use mnc_expr::{estimate_root, EstimationContext, ExprDag, NodeId, Planner};
use mnc_matrix::{gen, CsrMatrix};
use rand::SeedableRng;

/// The shared base matrices: a product-chain-friendly set with one skewed
/// ultra-sparse member, as in the chain experiments.
fn base_matrices(scale: f64) -> Vec<Arc<CsrMatrix>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAC4E);
    let d = (1200.0 * scale).max(40.0) as usize;
    let sparsities = [0.01, 0.001, 0.02, 0.005];
    sparsities
        .iter()
        .map(|&s| Arc::new(gen::rand_uniform(&mut rng, d, d, s)))
        .collect()
}

/// One optimizer probe: a fresh DAG over the shared leaves — alternating
/// left-deep and right-deep parenthesizations so intermediate synopses
/// differ across probes while the leaves repeat.
fn probe_dag(mats: &[Arc<CsrMatrix>], probe: usize) -> (ExprDag, NodeId) {
    let mut dag = ExprDag::new();
    let leaves: Vec<NodeId> = mats
        .iter()
        .enumerate()
        .map(|(i, m)| dag.leaf(format!("M{i}"), Arc::clone(m)))
        .collect();
    let root = if probe.is_multiple_of(2) {
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = dag.matmul(acc, l).expect("chain shapes agree");
        }
        acc
    } else {
        let mut acc = *leaves.last().expect("non-empty");
        for &l in leaves[..leaves.len() - 1].iter().rev() {
            acc = dag.matmul(l, acc).expect("chain shapes agree");
        }
        acc
    };
    (dag, root)
}

fn main() {
    let scale = env_scale(1.0);
    let reps = env_reps(20);
    banner(
        "cache",
        "EstimationContext: repeated estimation with and without a session",
        &format!("{reps} optimizer probes over 4 shared base matrices, scale {scale}."),
    );

    let mats = base_matrices(scale);
    // The probes re-use two DAG structures; estimating each probe with a
    // session costs at most two propagation walks plus cache lookups.
    let dags: Vec<(ExprDag, NodeId)> = (0..2).map(|p| probe_dag(&mats, p)).collect();

    // Uncached: every probe builds all leaf synopses from scratch.
    let t = Instant::now();
    let mut uncached_sum = 0.0;
    for rep in 0..reps {
        let est = MncEstimator::new();
        let (dag, root) = &dags[rep % dags.len()];
        uncached_sum += estimate_root(&est, dag, *root).expect("estimate");
    }
    let uncached = t.elapsed();

    // Cached: one session across all probes.
    let t = Instant::now();
    let mut cached_sum = 0.0;
    let est = MncEstimator::new();
    let mut ctx = EstimationContext::new();
    for rep in 0..reps {
        let (dag, root) = &dags[rep % dags.len()];
        cached_sum += ctx.estimate_root(&est, dag, *root).expect("estimate");
    }
    let cached = t.elapsed();

    // Planner re-costing rides the same session: plans hit warm synopses.
    let t = Instant::now();
    let plan = Planner::default()
        .plan_with_context(&est, &dags[0].0, &mut ctx)
        .expect("plan");
    let plan_time = t.elapsed();

    println!(
        "uncached: {:>10}   ({} probes, mean estimate {:.3e})",
        fmt_duration(uncached),
        reps,
        uncached_sum / reps as f64
    );
    println!(
        "cached  : {:>10}   ({} probes, mean estimate {:.3e})",
        fmt_duration(cached),
        reps,
        cached_sum / reps as f64
    );
    println!(
        "speedup : {:>9.1}x   hit rate {:.0}%",
        uncached.as_secs_f64() / cached.as_secs_f64().max(1e-9),
        ctx.stats().hit_rate() * 100.0
    );
    println!(
        "warm re-plan of probe 0: {} (total estimated FLOPs {:.3e})",
        fmt_duration(plan_time),
        plan.total_flops
    );
    println!("\nestimation session:\n{}", ctx.stats());

    assert!(
        ctx.stats().hit_rate() > 0.0,
        "repeated estimation must hit the cache"
    );
}
