//! Figure 7: construction and estimation runtime for varying sparsity.
//!
//! Product of two random d x d matrices with sparsity in
//! {0.001, 0.01, 0.1, 0.99} (the paper avoids 1.0 to dodge dense special
//! cases). Series: Sample, MNC, DMap, Bitset, LGraph, plus the actual FP64
//! matrix multiplication as the baseline.
//!
//! Expected shape (paper): metadata ≈ free (not shown); MNC close to
//! sampling and below DMap; Bitset and LGraph one or more orders of
//! magnitude slower, with LGraph gaining at low sparsity; estimators stay
//! below the MM runtime.

use std::sync::Arc;

use mnc_bench::{banner, env_reps, env_scale, fmt_duration, print_table};
use mnc_estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, LayeredGraphEstimator,
    MncEstimator, SparsityEstimator,
};
use mnc_matrix::gen;
use mnc_sparsest::runtime::{mean_duration, time_matmul, time_product};
use rand::SeedableRng;

fn main() {
    // Paper: 20K x 20K on a 24-vcore node. Default scale 0.1 -> 2K x 2K
    // keeps the dense 0.99 MM baseline tractable single-threaded.
    let scale = env_scale(0.1);
    let reps = env_reps(3);
    let d = ((20_000.0 * scale) as usize).max(256);
    banner(
        "Figure 7",
        "Construction/Estimation Runtime for Varying Sparsity",
        &format!("dims {d} x {d} (paper: 20K x 20K), mean of {reps} runs."),
    );

    let sample = BiasedSamplingEstimator::default();
    let mnc = MncEstimator::new();
    let dmap = DensityMapEstimator::default();
    let bitset = BitsetEstimator::default();
    let lgraph = LayeredGraphEstimator::default();
    let estimators: Vec<&dyn SparsityEstimator> = vec![&sample, &mnc, &dmap, &bitset, &lgraph];

    let mut total_rows = Vec::new();
    let mut cons_rows = Vec::new();
    let mut est_rows = Vec::new();
    for &s in &[0.001, 0.01, 0.1, 0.99] {
        eprintln!("sparsity {s}: generating inputs ...");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Arc::new(gen::rand_uniform(&mut rng, d, d, s));
        let b = Arc::new(gen::rand_uniform(&mut rng, d, d, s));
        let mut total = vec![format!("{s}")];
        let mut cons = vec![format!("{s}")];
        let mut est = vec![format!("{s}")];
        for e in &estimators {
            eprintln!("  {} ...", e.name());
            let mut last = None;
            let mean_total = mean_duration(reps, || {
                let t = time_product(*e, &a, &b).expect("product estimation succeeds");
                let out = t.total();
                last = Some(t);
                out
            });
            let t = last.expect("at least one repetition");
            total.push(fmt_duration(mean_total));
            cons.push(fmt_duration(t.construction));
            est.push(fmt_duration(t.estimation));
        }
        eprintln!("  MM baseline ...");
        let (mm, _) = time_matmul(&a, &b);
        total.push(fmt_duration(mm));
        total_rows.push(total);
        cons_rows.push(cons);
        est_rows.push(est);
    }

    let names: Vec<&str> = estimators.iter().map(|e| e.name()).collect();
    println!();
    println!("Figure 7(a) — total estimation time (construction + estimation):");
    let mut headers = vec!["sparsity"];
    headers.extend(&names);
    headers.push("MM");
    print_table(&headers, &total_rows);

    println!();
    println!("Figure 7(b) — construction time:");
    let mut headers = vec!["sparsity"];
    headers.extend(&names);
    print_table(&headers, &cons_rows);

    println!();
    println!("Figure 7(c) — estimation time:");
    let mut headers = vec!["sparsity"];
    headers.extend(&names);
    print_table(&headers, &est_rows);
}
