//! Figure 15: accuracy of **all 15 intermediates** of B3.2 (deferred scale
//! & shift) — the error triangles for the density map vs MNC.
//!
//! The chain is `Sᵀ Xᵀ diag(w) X S B` (six matrices, five products, 15
//! subchains). Paper: the density map struggles with the scale-and-shift
//! matrix (final relative error 98.6, and it mistakes `X S B` for sparse);
//! MNC is exact for many intermediates with a final error of 1.002.

use std::collections::HashMap;

use mnc_bench::{banner, env_scale, fmt_err, print_table};
use mnc_estimators::{DensityMapEstimator, MncEstimator};
use mnc_expr::{estimate_root, Evaluator, ExprDag};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::relative_error;
use mnc_sparsest::usecases::b3_2_chain;

fn main() {
    // Default scale 0.5: the largest intermediates (785 x m dense-ish
    // patterns) stay comfortably in memory.
    let scale = env_scale(0.5);
    banner(
        "Figure 15",
        "Accuracy of All Intermediates for B3.2",
        &format!(
            "Chain Sᵀ Xᵀ diag(w) X S B over the Mnist substitute at scale \
             {scale}; left-deep estimation per intermediate (as in the \
             paper). Rows = start matrix i, columns = end matrix j."
        ),
    );
    let data = Datasets::with_scale(0xDA7A, scale);
    let chain = b3_2_chain(&data);
    let k = chain.len();
    let labels: Vec<&str> = chain.iter().map(|(n, _)| n.as_str()).collect();

    let dmap = DensityMapEstimator::default();
    let mnc = MncEstimator::new();

    // errors[(i, j)] = (dmap error, mnc error) for subchain i..=j.
    let mut errors: HashMap<(usize, usize), (f64, f64)> = HashMap::new();
    for i in 0..k - 1 {
        // One DAG per start index: left-deep chain i..k-1, all prefixes.
        let mut dag = ExprDag::new();
        let leaves: Vec<_> = chain[i..]
            .iter()
            .map(|(name, m)| dag.leaf(name.clone(), std::sync::Arc::clone(m)))
            .collect();
        let mids = dag.left_deep_chain(&leaves).expect("chain shapes agree");
        let mut ev = Evaluator::new();
        for (off, node) in mids.iter().enumerate() {
            let j = i + off + 1;
            eprintln!("evaluating subchain {}..{} ...", labels[i], labels[j]);
            let truth = ev.sparsity(&dag, *node).expect("chain evaluates");
            let e_dm = estimate_root(&dmap, &dag, *node).expect("dmap supports chains");
            let e_mnc = estimate_root(&mnc, &dag, *node).expect("mnc supports chains");
            errors.insert(
                (i, j),
                (relative_error(truth, e_dm), relative_error(truth, e_mnc)),
            );
        }
    }

    for (name, which) in [("(a) DMap", 0usize), ("(b) MNC", 1usize)] {
        println!();
        println!("Figure 15{name} relative errors:");
        let mut headers = vec!["from\\to"];
        headers.extend(&labels[1..]);
        let rows: Vec<Vec<String>> = (0..k - 1)
            .map(|i| {
                let mut row = vec![labels[i].to_string()];
                for j in 1..k {
                    row.push(match errors.get(&(i, j)) {
                        Some(&(dm, mn)) => fmt_err(if which == 0 { dm } else { mn }),
                        None => "".into(),
                    });
                }
                row
            })
            .collect();
        print_table(&headers, &rows);
    }
    println!();
    println!(
        "paper reference: DMap final error 98.6 (and up to 49,062 on the \
         B-suffix chains); MNC exact on many intermediates, final 1.002."
    );
}
