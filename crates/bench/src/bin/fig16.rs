//! Figure 16 / Appendix C: sparsity-aware matrix-chain optimization —
//! optimized plans vs random plans.
//!
//! The paper's setup: a chain of n = 20 matrices with dimensions
//! 10, 10³, 10⁴, 10⁴, 10³, 10, 10⁴, 1, 10⁴, 10³ (repeated twice) and 1,
//! random sparsity in [1e-4, 1] for every third matrix and 0.1 otherwise.
//! 100,000 random plans are scored; the dense DP plan lands ≈99.1x above
//! the best plan while the sparsity-aware DP finds the optimum.

use mnc_bench::{banner, env_scale, print_table};
use mnc_core::{MncConfig, MncSketch, SplitMix64};
use mnc_expr::{dense_chain_order, plan_cost_sketched, random_plan, sparse_chain_order};
use mnc_matrix::gen;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    // Paper dims scaled by `scale` (default 0.1: 1 .. 1000 instead of
    // 10 .. 10^4); plan count via MNC_PLANS (default 10,000).
    let scale = env_scale(0.1);
    let plans: usize = std::env::var("MNC_PLANS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    // Small dimensions (1, 10) stay unscaled — only the large ones shrink.
    let dim = |base: usize| {
        if base <= 10 {
            base
        } else {
            ((base as f64 * scale) as usize).max(10)
        }
    };
    // The paper's dimension pattern for n = 20 matrices (21 entries).
    let base = [
        10, 1_000, 10_000, 10_000, 1_000, 10, 10_000, 1, 10_000, 1_000, 10, 1_000, 10_000, 10_000,
        1_000, 10, 10_000, 1, 10_000, 1_000, 1,
    ];
    let dims: Vec<usize> = base.iter().map(|&d| dim(d)).collect();
    let n = dims.len() - 1;

    banner(
        "Figure 16",
        "Optimized vs Random Plans (sparsity-aware MM chain optimization)",
        &format!(
            "n = {n} matrices, dims scaled by {scale}, {plans} random plans \
             (paper: 100,000). Costs are estimated sparse FLOPs via MNC \
             sketches (Eq. 17), normalized by the best plan seen."
        ),
    );

    let seed: u64 = std::env::var("MNC_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sparsities: Vec<f64> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                // Random sparsity in [1e-4, 1] (log-uniform: the interesting
                // draws are the ultra-sparse ones a dense optimizer misses).
                10f64.powf(rng.gen_range(-4.0..0.0))
            } else {
                0.1
            }
        })
        .collect();
    eprintln!("generating {n} chain matrices ...");
    let mats: Vec<_> = dims
        .windows(2)
        .zip(&sparsities)
        .map(|(w, &s)| {
            // Guarantee at least one non-zero: an empty chain matrix would
            // zero out every plan cost.
            let s = s.max(1.0 / (w[0] * w[1]) as f64);
            gen::rand_uniform(&mut rng, w[0], w[1], s)
        })
        .collect();
    let sketches: Vec<MncSketch> = mats.iter().map(MncSketch::build).collect();
    let cfg = MncConfig::default();

    // Optimized plans.
    let (_, dense_plan) = dense_chain_order(&dims);
    let (sparse_cost, sparse_plan) = sparse_chain_order(&sketches, &cfg);
    let dense_cost = plan_cost_sketched(&sketches, &dense_plan, &cfg);

    // Random plans.
    eprintln!("scoring {plans} random plans ...");
    let mut prng = SplitMix64::new(0xF16);
    let mut costs: Vec<f64> = Vec::with_capacity(plans);
    for _ in 0..plans {
        let p = random_plan(n, &mut prng);
        costs.push(plan_cost_sketched(&sketches, &p, &cfg));
    }
    let best = costs
        .iter()
        .copied()
        .fold(sparse_cost.min(dense_cost), f64::min)
        .max(1.0);
    let worst = costs.iter().copied().fold(0.0f64, f64::max);

    // Histogram of slowdowns over the best plan (log10 buckets, Fig 16).
    let mut hist = [0usize; 8];
    for &c in &costs {
        let slow = (c / best).max(1.0);
        let bucket = (slow.log10().floor() as usize).min(7);
        hist[bucket] += 1;
    }
    println!();
    let rows: Vec<Vec<String>> = hist
        .iter()
        .enumerate()
        .map(|(b, &count)| {
            vec![
                format!(
                    "[{:.0e}, {:.0e})",
                    10f64.powi(b as i32),
                    10f64.powi(b as i32 + 1)
                ),
                count.to_string(),
            ]
        })
        .collect();
    print_table(&["slowdown over best", "random plans"], &rows);

    println!();
    println!("worst/best random plan spread: {:.1e}x", worst / best);
    println!(
        "dense mmchain opt plan:  {:.3}x over best   {}",
        dense_cost / best,
        dense_plan
    );
    println!(
        "sparse mmchain opt plan: {:.3}x over best   {}",
        sparse_cost / best,
        sparse_plan
    );
    println!();
    println!(
        "paper reference: >6 orders of magnitude between worst and best; \
         dense DP 99.1x worse than best; sparsity-aware DP finds the \
         optimal plan (1.0x)."
    );
}
