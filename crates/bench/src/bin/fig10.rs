//! Figure 10: accuracy for B1 Struct (structured matrix products).
//!
//! Paper expectations: the metadata estimators, sampling, and the density
//! map show large errors; the layered graph is accurate (max 1.61 on
//! B1.1); only Bitset and MNC are exact on *all* five scenarios, with B1.5
//! relying on MNC's upper bound. The biased sampler reports INF on B1.4
//! (it misses the dense vectors in most runs).

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::SparsityEstimator;
use mnc_sparsest::runner::{run_case, standard_estimators};
use mnc_sparsest::usecases::b1_suite;

fn main() {
    // Paper base dimension is 100K; scale 0.1 (10K) keeps the fully dense
    // B1.4 ground truth tractable on one machine.
    let scale = env_scale(0.1);
    banner(
        "Figure 10",
        "Accuracy for B1 Struct",
        &format!(
            "Base dimension {} (paper: 100K). Cells are relative errors \
             max(s,ŝ)/min(s,ŝ); 1.000 = exact.",
            (100_000.0 * scale) as usize
        ),
    );
    let estimators = standard_estimators();
    let refs: Vec<&dyn SparsityEstimator> = estimators.iter().map(|b| b.as_ref()).collect();
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();
    let mut results = Vec::new();
    for case in b1_suite(scale, 42) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case(&case, &refs));
    }
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "paper reference: MNC and Bitset exact everywhere; LGraph max 1.61 \
         (B1.1); Sample INF on B1.4, exact on B1.5; MetaWC/MetaAC/DMap \
         errors of 10..1e5 except special cases."
    );
}
