//! Figure 12: accuracy with varying baseline parameters.
//!
//! (a/b) Layered graph: number of rounds r ∈ {2..128} on B2.1 and B2.2 —
//!       the error decreases with r; MNC (parameter-free) is the flat line.
//! (c/d) Density map: block size b ∈ {16..1024} on B2.4 and B2.2 — only
//!       small blocks can separate the Covertype column skew.

use mnc_bench::{banner, env_scale, fmt_err, print_table};
use mnc_estimators::{DensityMapEstimator, LayeredGraphEstimator, MncEstimator, SparsityEstimator};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::run_case;
use mnc_sparsest::usecases::b2_suite;
use mnc_sparsest::UseCase;

fn error_of(case: &UseCase, est: &dyn SparsityEstimator) -> String {
    let refs: Vec<&dyn SparsityEstimator> = vec![est];
    let results = run_case(case, &refs);
    match results[0].outcome.error() {
        Some(e) => fmt_err(e),
        None => "✗".into(),
    }
}

fn main() {
    let scale = env_scale(1.0);
    let data = Datasets::with_scale(0xDA7A, scale);
    let cases = b2_suite(&data);
    let by_id = |id: &str| cases.iter().find(|c| c.id == id).expect("case exists");
    let mnc = MncEstimator::new();

    banner(
        "Figure 12(a/b)",
        "LGraph accuracy vs number of rounds (B2.1, B2.2)",
        "Paper: knees are data-dependent; the default r = 32 attains good \
         accuracy; MNC is exact on both and needs no parameter.",
    );
    let mut rows = Vec::new();
    for rounds in [2usize, 4, 8, 16, 32, 64, 128] {
        let lg = LayeredGraphEstimator::with_rounds(rounds);
        rows.push(vec![
            format!("{rounds}{}", if rounds == 32 { " (default)" } else { "" }),
            error_of(by_id("B2.1"), &lg),
            error_of(by_id("B2.2"), &lg),
        ]);
    }
    rows.push(vec![
        "MNC".into(),
        error_of(by_id("B2.1"), &mnc),
        error_of(by_id("B2.2"), &mnc),
    ]);
    print_table(&["rounds r", "B2.1 NLP", "B2.2 Project"], &rows);

    println!();
    banner(
        "Figure 12(c/d)",
        "DMap accuracy vs block size (B2.4, B2.2)",
        "Paper: rather small influence on B2.4; for B2.2 only blocks of 16 \
         or 32 can exploit the 54-column structure of Cov.",
    );
    let mut rows = Vec::new();
    for block in [16usize, 32, 64, 128, 256, 512, 1024] {
        let dm = DensityMapEstimator::with_block(block);
        rows.push(vec![
            format!("{block}{}", if block == 256 { " (default)" } else { "" }),
            error_of(by_id("B2.4"), &dm),
            error_of(by_id("B2.2"), &dm),
        ]);
    }
    rows.push(vec![
        "MNC".into(),
        error_of(by_id("B2.4"), &mnc),
        error_of(by_id("B2.2"), &mnc),
    ]);
    print_table(&["block b", "B2.4 EmailG", "B2.2 Project"], &rows);
}
