//! Appendix B: multi-threaded bitset estimator vs (single-threaded) MNC on
//! a dense product.
//!
//! Paper setup: dense product of two random 20K x 20K matrices at sparsity
//! 0.99 — the case most favourable to the compute-bound bitset.
//! Multi-threading sped the bitset up ~11x (128.2 s -> 11.7 s on 12
//! cores), yet single-threaded MNC Basic (3.2 s) and MNC (5.1 s) still
//! won, and MNC's time is construction-dominated (reusable across plans).

use std::sync::Arc;

use mnc_bench::{banner, env_reps, env_scale, fmt_duration, print_table};
use mnc_estimators::{BitsetEstimator, MncEstimator, SparsityEstimator};
use mnc_matrix::gen;
use mnc_sparsest::runtime::{mean_duration, time_product};
use rand::SeedableRng;

fn main() {
    let scale = env_scale(0.1);
    let reps = env_reps(3);
    let d = ((20_000.0 * scale) as usize).max(256);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    banner(
        "Appendix B",
        "Multi-threaded Bitset vs MNC (dense product)",
        &format!("dims {d} x {d} at sparsity 0.99, {threads} threads, mean of {reps} runs."),
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB);
    let a = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.99));
    let b = Arc::new(gen::rand_uniform(&mut rng, d, d, 0.99));

    let bitset_seq = BitsetEstimator::default();
    let bitset_par = BitsetEstimator::parallel(threads);
    let mnc_basic = MncEstimator::basic();
    let mnc = MncEstimator::new();
    let entries: Vec<(&str, &dyn SparsityEstimator)> = vec![
        ("Bitset (1 thread)", &bitset_seq),
        ("Bitset (parallel)", &bitset_par),
        ("MNC Basic (1 thread)", &mnc_basic),
        ("MNC (1 thread)", &mnc),
    ];

    let mut rows = Vec::new();
    for (label, e) in entries {
        eprintln!("{label} ...");
        let mut last = None;
        let mean_total = mean_duration(reps, || {
            let t = time_product(e, &a, &b).expect("estimation succeeds");
            let out = t.total();
            last = Some(t);
            out
        });
        let t = last.expect("at least one repetition");
        rows.push(vec![
            label.to_string(),
            fmt_duration(mean_total),
            fmt_duration(t.construction),
            fmt_duration(t.estimation),
        ]);
    }
    print_table(&["estimator", "total", "construction", "estimation"], &rows);
    println!();
    println!(
        "paper reference (20K², 12 cores): Bitset 128.2 s -> 11.7 s with \
         threads (~11x); MNC Basic 3.2 s and MNC 5.1 s still faster, and \
         construction-dominated."
    );
}
