//! `mnc-perf` — the perf/memory trajectory harness.
//!
//! Runs the fixed suite from [`mnc_bench::perf`] and writes the
//! stable-schema `BENCH_MNC.json` record: per-workload latency quantiles
//! aggregated from `mnc-obs` spans, measured synopsis heap bytes for every
//! estimator, per-estimator accuracy summaries, and the environment
//! fingerprint. A per-phase time-attribution table goes to stderr.
//!
//! ```text
//! MNC_SCALE=0.1 MNC_REPS=3 cargo run --release --bin mnc-perf
//! mnc-perf --scale 1.0 --reps 5           # paper-scale profile (flags win
//!                                         # over MNC_SCALE / MNC_REPS)
//! mnc-perf --baseline BENCH_MNC.json      # regression gate (non-zero exit)
//! mnc-perf --out -                        # record to stdout instead
//! ```
//!
//! `MNC_THREADS` sets the worker count of the `parallel.*` workload
//! (default 4); every threaded path is asserted bit-identical to its
//! sequential twin before it is timed.
//!
//! `MNC_PERF_INJECT=latency=100` (or `memory=`, `accuracy=`, `infinite=`)
//! deliberately corrupts the metrics after collection, so CI can prove the
//! baseline gate actually fails — see `perf::apply_injection`.
//!
//! Build with `--features alloc-track` to add per-workload allocation
//! totals and the process peak to the record (bit-identical estimates, just
//! more columns).

use std::process::ExitCode;

use mnc_bench::perf::{
    apply_injection, baseline_staleness_warning, compare_to_baseline, render_json, run_suite,
};
use mnc_bench::{env_reps, env_scale, ObsArgs, OBS_USAGE};

fn usage() -> String {
    format!(
        "usage: mnc-perf [--out <file|->] [--baseline <file>] [--scale F] [--reps N] {OBS_USAGE}"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs, rest) = match ObsArgs::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let mut out_path = "BENCH_MNC.json".to_string();
    let mut baseline: Option<String> = None;
    let mut scale_flag: Option<f64> = None;
    let mut reps_flag: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p.clone()),
                None => {
                    eprintln!("error: --baseline needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) if f > 0.0 => scale_flag = Some(f),
                _ => {
                    eprintln!("error: --scale needs a positive number\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => reps_flag = Some(n),
                _ => {
                    eprintln!("error: --reps needs a positive integer\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let scale = scale_flag.unwrap_or_else(|| env_scale(1.0));
    let reps = reps_flag.unwrap_or_else(|| env_reps(5));
    eprintln!("================================================================");
    eprintln!("mnc-perf — fixed suite: estimators / chain / cache / sparsest-b1");
    eprintln!("scale {scale}, {reps} reps; record schema mnc.perf.v1");
    eprintln!("================================================================");

    let (mut report, rec) = run_suite(scale, reps);

    if let Ok(spec) = std::env::var("MNC_PERF_INJECT") {
        match apply_injection(&mut report.metrics, &spec) {
            Ok(applied) => {
                for line in applied {
                    eprintln!("MNC_PERF_INJECT: {line}");
                }
            }
            Err(e) => {
                eprintln!("error: MNC_PERF_INJECT: {e}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!("\nper-phase time attribution (self time, from the span tree):");
    eprint!("{}", report.attribution);

    // Optional --trace / --metrics / --obs-format output from the suite's
    // recorder (Chrome trace, Prometheus exposition, ...).
    if let Err(e) = obs.emit(&rec) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let json = render_json(&report);
    if out_path == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        eprintln!("\nwrote {} metrics to {out_path}", report.metrics.len());
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(warning) = baseline_staleness_warning(&report, &text) {
            eprintln!("\nWARNING: {warning}\n");
        }
        match compare_to_baseline(&report, &text) {
            Ok(regressions) if regressions.is_empty() => {
                eprintln!("baseline compare vs {path}: OK (no gated metric regressed)");
            }
            Ok(regressions) => {
                eprintln!(
                    "baseline compare vs {path}: {} regression(s):",
                    regressions.len()
                );
                for r in &regressions {
                    eprintln!("  REGRESSION {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: baseline compare vs {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
