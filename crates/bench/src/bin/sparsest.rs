//! The full SparsEst accuracy suite in one run: B1, B2, and B3 (roots and
//! tracked intermediates) across the standard estimator line-up. This is
//! the aggregate behind Figures 10, 11, 13, and 14 — run the individual
//! `figNN` binaries for the paper-faithful subsets and reference values.
//!
//! The run doubles as an accuracy-regression gate: every B1, B2, and B3
//! estimate is checked against the per-case error thresholds in
//! `crates/sparsest/data/b{1,2,3}_thresholds.tsv` (the B2/B3 bounds are
//! seeded from errors measured at `MNC_SCALE=0.1`, the CI scale), and any
//! violation exits non-zero. Observability flags (`--trace`, `--metrics`,
//! `--obs-format`) additionally export the run's spans, metrics, and
//! accuracy telemetry.

use std::process::ExitCode;

use mnc_bench::{banner, env_scale, print_accuracy_matrix, ObsArgs, OBS_USAGE};
use mnc_core::MncSketch;
use mnc_estimators::{BitsetEstimator, SparsityEstimator};
use mnc_expr::{EstimationContext, ExprNode, Recorder};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::{run_case_with_context, run_tracked_with_context, standard_estimators};
use mnc_sparsest::usecases::{b1_suite, b2_suite, b3_suite, UseCase};
use mnc_sparsest::{b1_thresholds, b2_thresholds, b3_thresholds, check_thresholds};

/// Persists the MNC sketch of every B1 leaf matrix into an `mnc-served`
/// synopsis catalog at `dir`, named `<case-id>.<leaf>` (invalid name bytes
/// mapped to `_`). A daemon started with `--catalog <dir>` then serves
/// estimates over the suite's inputs without rebuilding a single sketch.
fn save_b1_sketches(dir: &str, cases: &[UseCase]) -> Result<(), String> {
    let mut catalog = mnc_served::SynopsisCatalog::open(dir).map_err(|e| e.to_string())?;
    let mut saved = 0usize;
    for case in cases {
        for (_, node) in case.dag.iter() {
            let ExprNode::Leaf { name, matrix } = node else {
                continue;
            };
            let entry_name: String = format!("{}.{}", case.id, name)
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            let sketch = std::sync::Arc::new(MncSketch::build(matrix));
            catalog
                .put(&entry_name, sketch, true)
                .map_err(|e| e.to_string())?;
            saved += 1;
        }
    }
    eprintln!("saved {saved} leaf sketch(es) to catalog {dir}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs, rest) = match ObsArgs::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\nusage: sparsest {OBS_USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut save_sketches: Option<String> = None;
    let mut threads = 1usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--save-sketches" => match it.next() {
                Some(dir) => save_sketches = Some(dir.clone()),
                None => {
                    eprintln!("error: --save-sketches needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("error: --threads needs a number");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument: {other}\nusage: sparsest [--save-sketches <dir>] \
                     [--threads N] {OBS_USAGE}"
                );
                return ExitCode::from(2);
            }
        }
    }

    let scale = env_scale(0.1);
    banner(
        "SparsEst",
        "Full accuracy suite (B1 + B2 + B3)",
        &format!("B1 base dimension scale {scale}; datasets at the same scale."),
    );
    let mut estimators = standard_estimators();
    estimators[6] = Box::new(BitsetEstimator::with_memory_limit(256 << 20));
    let refs: Vec<&dyn SparsityEstimator> = estimators.iter().map(|b| b.as_ref()).collect();
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    // The recorder is always on here: the B1 accuracy-regression gate below
    // consumes the accuracy telemetry, so the suite always collects it
    // (unbounded — a bounded ring would truncate the records the gate
    // needs). The observability flags only control whether spans/metrics
    // get exported; `--serve-obs` additionally taps the same recorder for
    // live scrapes while the suite runs.
    let rec = Recorder::enabled();
    let server = match obs.serve() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(srv) = &server {
        srv.install(&rec);
    }

    // One estimation session for the whole suite: B2/B3 cases share dataset
    // matrices, and tracked-intermediate reports revisit the same DAGs, so
    // synopses get real reuse across cases.
    let mut ctx = EstimationContext::new()
        .with_threads(threads)
        .with_recorder(rec.clone());
    let mut results = Vec::new();
    let b1_cases = b1_suite(scale, 42);
    if let Some(dir) = &save_sketches {
        if let Err(e) = save_b1_sketches(dir, &b1_cases) {
            eprintln!("error: --save-sketches: {e}");
            return ExitCode::FAILURE;
        }
    }
    for case in &b1_cases {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(case, &refs, &mut ctx));
    }
    let data = Datasets::with_scale(0xDA7A, scale);
    for case in b2_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(&case, &refs, &mut ctx));
    }
    for case in b3_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(&case, &refs, &mut ctx));
        if !case.tracked.is_empty() {
            results.extend(run_tracked_with_context(&case, &refs, &mut ctx));
        }
    }
    print_accuracy_matrix(&results, &names);
    println!("\nestimation session:\n{}", ctx.stats());

    if obs.enabled() {
        if let Err(e) = obs.emit(&rec) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(srv) = server {
        srv.finish();
    }

    let accuracy = rec.accuracy();
    let mut thresholds = b1_thresholds();
    thresholds.extend(b2_thresholds());
    thresholds.extend(b3_thresholds());
    let violations = check_thresholds(&accuracy, &thresholds);
    if violations.is_empty() {
        eprintln!(
            "accuracy regression check: OK ({} telemetry records against {} thresholds)",
            accuracy.len(),
            thresholds.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("accuracy regression: {v}");
        }
        eprintln!(
            "accuracy regression check: FAILED ({} violation(s))",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
