//! The full SparsEst accuracy suite in one run: B1, B2, and B3 (roots and
//! tracked intermediates) across the standard estimator line-up. This is
//! the aggregate behind Figures 10, 11, 13, and 14 — run the individual
//! `figNN` binaries for the paper-faithful subsets and reference values.

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::{BitsetEstimator, SparsityEstimator};
use mnc_expr::EstimationContext;
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::{run_case_with_context, run_tracked_with_context, standard_estimators};
use mnc_sparsest::usecases::{b1_suite, b2_suite, b3_suite};

fn main() {
    let scale = env_scale(0.1);
    banner(
        "SparsEst",
        "Full accuracy suite (B1 + B2 + B3)",
        &format!("B1 base dimension scale {scale}; datasets at the same scale."),
    );
    let mut estimators = standard_estimators();
    estimators[6] = Box::new(BitsetEstimator::with_memory_limit(256 << 20));
    let refs: Vec<&dyn SparsityEstimator> = estimators.iter().map(|b| b.as_ref()).collect();
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    // One estimation session for the whole suite: B2/B3 cases share dataset
    // matrices, and tracked-intermediate reports revisit the same DAGs, so
    // synopses get real reuse across cases.
    let mut ctx = EstimationContext::new();
    let mut results = Vec::new();
    for case in b1_suite(scale, 42) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(&case, &refs, &mut ctx));
    }
    let data = Datasets::with_scale(0xDA7A, scale);
    for case in b2_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(&case, &refs, &mut ctx));
    }
    for case in b3_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case_with_context(&case, &refs, &mut ctx));
        if !case.tracked.is_empty() {
            results.extend(run_tracked_with_context(&case, &refs, &mut ctx));
        }
    }
    print_accuracy_matrix(&results, &names);
    println!("\nestimation session:\n{}", ctx.stats());
}
