//! Figure 13: accuracy for B3.3 Graph — matrix powers P G, P G G, P G G G,
//! P G G G G on the citation-graph substitute.
//!
//! Paper expectations: LGraph stays accurate with slightly increasing
//! errors; MNC is exact on the initial selection P G; matrix powers densify
//! and *increase uniformity*, so MetaAC and DMap errors shrink along the
//! chain while MNC's structure propagation loses ground (final: MNC 14.3
//! vs MNC Basic 15.8 — the upper bound still helps).

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::{
    DensityMapEstimator, LayeredGraphEstimator, MetaAcEstimator, MncEstimator, SparsityEstimator,
};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::run_tracked;
use mnc_sparsest::usecases::b3_suite;

fn main() {
    let scale = env_scale(1.0);
    banner(
        "Figure 13",
        "Accuracy for B3.3 Graph (matrix powers)",
        &format!("Citation-graph substitute at scale {scale}."),
    );
    let data = Datasets::with_scale(0xDA7A, scale);
    let case = b3_suite(&data)
        .into_iter()
        .find(|c| c.id == "B3.3")
        .expect("B3.3 exists");

    let meta_ac = MetaAcEstimator;
    let mnc_basic = MncEstimator::basic();
    let mnc = MncEstimator::new();
    let dmap = DensityMapEstimator::default();
    let lgraph = LayeredGraphEstimator::default();
    let refs: Vec<&dyn SparsityEstimator> = vec![&meta_ac, &mnc_basic, &mnc, &dmap, &lgraph];
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    let results = run_tracked(&case, &refs);
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "paper reference: errors grow along the chain for MNC (final 14.3) \
         and MNC Basic (15.8) but *shrink* for MetaAC and DMap (densifying \
         powers restore uniformity); LGraph stays near 1 throughout; MNC \
         is exact on PG."
    );
}
