//! Table 3: overview of used datasets — the paper's real datasets next to
//! our synthetic substitutes (see DESIGN.md for the substitution rationale).

use mnc_bench::{banner, env_scale, print_table};
use mnc_sparsest::datasets::{table3, Datasets};

fn main() {
    let scale = env_scale(1.0);
    banner(
        "Table 3",
        "Overview of Used Datasets",
        &format!("Substitutes generated at scale {scale} (MNC_SCALE to change)."),
    );
    let data = Datasets::with_scale(0xDA7A, scale);
    let rows: Vec<Vec<String>> = table3(&data)
        .into_iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                format!("{}x{}", d.paper.0, d.paper.1),
                format!("{:.1e}", d.paper.2 as f64),
                format!("{:.2e}", d.paper.3),
                format!("{}x{}", d.ours.0, d.ours.1),
                format!("{:.1e}", d.ours.2 as f64),
                format!("{:.2e}", d.ours.3),
            ]
        })
        .collect();
    print_table(
        &[
            "Dataset",
            "paper dims",
            "paper nnz",
            "paper s",
            "ours dims",
            "ours nnz",
            "ours s",
        ],
        &rows,
    );
}
