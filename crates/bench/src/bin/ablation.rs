//! Ablation study of the MNC design choices called out in DESIGN.md:
//!
//! * extended count vectors `h^er`/`h^ec` (Eq. 8),
//! * the Theorem 3.2 bounds and the reduced output size `p`,
//! * probabilistic vs deterministic rounding in sketch propagation,
//!
//! plus the dynamic (quad-tree) density map against the fixed-block map.
//! Run over the B1 structured products, the B2 real operations, and the
//! B3.3 power chain.

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_core::MncConfig;
use mnc_estimators::{
    DensityMapEstimator, DynamicDensityMapEstimator, MncEstimator, SparsityEstimator,
};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::{run_case, run_tracked};
use mnc_sparsest::usecases::{b1_suite, b2_suite, b3_suite};

fn variants() -> Vec<MncEstimator> {
    let full = MncConfig::default();
    vec![
        MncEstimator::with_config("MNC", full),
        MncEstimator::with_config(
            "MNC -ext",
            MncConfig {
                use_extended: false,
                ..full
            },
        ),
        MncEstimator::with_config(
            "MNC -bounds",
            MncConfig {
                use_bounds: false,
                ..full
            },
        ),
        MncEstimator::with_config("MNC Basic", MncConfig::basic()),
        MncEstimator::with_config(
            "MNC detrnd",
            MncConfig {
                probabilistic_rounding: false,
                ..full
            },
        ),
    ]
}

fn main() {
    let scale = env_scale(0.1);
    banner(
        "Ablation",
        "MNC design choices + dynamic vs fixed density map",
        &format!(
            "Scale {scale}. Columns: full MNC; without extended vectors; \
             without Theorem 3.2 bounds; Basic (neither); deterministic \
             rounding; fixed DMap (b=256); dynamic quad-tree DMap."
        ),
    );
    let mncs = variants();
    let dmap = DensityMapEstimator::default();
    let dyn_dmap = DynamicDensityMapEstimator::default();
    let mut refs: Vec<&dyn SparsityEstimator> =
        mncs.iter().map(|e| e as &dyn SparsityEstimator).collect();
    refs.push(&dmap);
    refs.push(&dyn_dmap);
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    let mut results = Vec::new();
    for case in b1_suite(scale, 42) {
        eprintln!("running {} ...", case.id);
        results.extend(run_case(&case, &refs));
    }
    let data = Datasets::with_scale(0xDA7A, scale);
    for case in b2_suite(&data) {
        eprintln!("running {} ...", case.id);
        results.extend(run_case(&case, &refs));
    }
    for case in b3_suite(&data) {
        if case.id == "B3.3" {
            eprintln!("running {} (tracked powers) ...", case.id);
            results.extend(run_tracked(&case, &refs));
        }
    }
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "expected: B1.5 needs the bounds (errors explode for -bounds and \
         Basic); extended vectors matter on matrices with a mix of single- \
         and multi-non-zero rows; deterministic rounding biases the \
         ultra-sparse chain cases; the dynamic map tracks the fixed map \
         while bounding synopsis size by the input size."
    );
}
