//! Table 1: analysis of existing sparsity estimators (space, time, chain
//! support, bias).

use mnc_bench::{banner, print_table};
use mnc_estimators::COMPLEXITY_TABLE;

fn main() {
    banner(
        "Table 1",
        "Analysis of Existing Sparsity Estimators",
        "Static complexity summary; matches the paper's Table 1 verbatim.",
    );
    let rows: Vec<Vec<String>> = COMPLEXITY_TABLE
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.space.to_string(),
                c.time.to_string(),
                if c.chains { "yes" } else { "no" }.to_string(),
                c.bias.unwrap_or("unbiased-ish / none stated").to_string(),
            ]
        })
        .collect();
    print_table(&["Estimator", "Space", "Time", "Chains", "Bias"], &rows);
}
