//! Figure 11: accuracy for B2 Real (operations over real-data substitutes).
//!
//! Paper expectations: MNC exact on B2.1/B2.2/B2.5, small errors on
//! B2.3 (1.17) and B2.4 (1.09); LGraph consistently low errors and better
//! than MNC on co-reference counting; Bitset exact where it fits but out of
//! memory on the big NLP matrices (B2.1/B2.3 — ≈8 TB in the paper);
//! metadata/sampling/density map struggle with the structure.

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::{BitsetEstimator, SparsityEstimator};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::{run_case, standard_estimators};
use mnc_sparsest::usecases::b2_suite;

fn main() {
    let scale = env_scale(1.0);
    banner(
        "Figure 11",
        "Accuracy for B2 Real",
        &format!(
            "Dataset substitutes at scale {scale}. The bitset runs under a \
             64 MB synopsis budget to mirror the paper's out-of-memory \
             cases on the large NLP matrices."
        ),
    );
    let mut estimators = standard_estimators();
    // Swap in the budgeted bitset (position 6 in the standard line-up).
    estimators[6] = Box::new(BitsetEstimator::with_memory_limit(64 << 20));
    let refs: Vec<&dyn SparsityEstimator> = estimators.iter().map(|b| b.as_ref()).collect();
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();
    let data = Datasets::with_scale(0xDA7A, scale);
    let mut results = Vec::new();
    for case in b2_suite(&data) {
        eprintln!("running {} {} ...", case.id, case.name);
        results.extend(run_case(&case, &refs));
    }
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "paper reference: MNC 1.0 / 1.0 / 1.17 / 1.09 / 1.0 for \
         B2.1..B2.5; Bitset ✗ on B2.1 and B2.3; LGraph low errors, beats \
         MNC on B2.3; DMap ≈1.76 on B2.5, MetaWC 1.13 on B2.5."
    );
}
