//! Figure 8: construction and estimation runtime for varying common
//! dimension at a fixed non-zero count.
//!
//! Output is d x d; the common dimension n and sparsity co-vary so that
//! nnz stays constant: (n, s) in {(0.1d, 0.1), (d, 0.01), (10d, 0.001),
//! (100d, 1e-4)} — the paper's {1K/0.1, 10K/0.01, 100K/0.001, 1M/1e-4}
//! with output 10K x 10K.
//!
//! Expected shape (paper): with increasing sparsity bitset and density map
//! become less competitive even vs the full MM; sampling and MNC scale
//! with the common dimension; MNC construction scales slightly worse than
//! the density map here because its per-row reduction is smaller.

use std::sync::Arc;

use mnc_bench::{banner, env_reps, env_scale, fmt_duration, print_table};
use mnc_estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, LayeredGraphEstimator,
    MncEstimator, SparsityEstimator,
};
use mnc_matrix::gen;
use mnc_sparsest::runtime::{mean_duration, time_matmul, time_product};
use rand::SeedableRng;

fn main() {
    // Paper output dims: 10K x 10K. Default scale 0.25 -> 2.5K x 2.5K.
    let scale = env_scale(0.25);
    let reps = env_reps(3);
    let d = ((10_000.0 * scale) as usize).max(250);
    banner(
        "Figure 8",
        "Runtime for Varying Common Dimension (fixed nnz)",
        &format!(
            "output {d} x {d} (paper: 10K x 10K), common dimension sweep, \
             mean of {reps} runs."
        ),
    );

    let sample = BiasedSamplingEstimator::default();
    let mnc = MncEstimator::new();
    let dmap = DensityMapEstimator::default();
    let bitset = BitsetEstimator::default();
    let lgraph = LayeredGraphEstimator::default();
    let estimators: Vec<&dyn SparsityEstimator> = vec![&sample, &mnc, &dmap, &bitset, &lgraph];

    let configs: Vec<(usize, f64)> =
        vec![(d / 10, 0.1), (d, 0.01), (10 * d, 0.001), (100 * d, 0.0001)];

    let mut total_rows = Vec::new();
    let mut cons_rows = Vec::new();
    let mut est_rows = Vec::new();
    for &(n, s) in &configs {
        let label = format!("{n}/{s}");
        eprintln!("common dim {n}, sparsity {s}: generating inputs ...");
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = Arc::new(gen::rand_uniform(&mut rng, d, n, s));
        let b = Arc::new(gen::rand_uniform(&mut rng, n, d, s));
        let mut total = vec![label.clone()];
        let mut cons = vec![label.clone()];
        let mut est = vec![label];
        for e in &estimators {
            eprintln!("  {} ...", e.name());
            let mut last = None;
            let mean_total = mean_duration(reps, || {
                let t = time_product(*e, &a, &b).expect("product estimation succeeds");
                let out = t.total();
                last = Some(t);
                out
            });
            let t = last.expect("at least one repetition");
            total.push(fmt_duration(mean_total));
            cons.push(fmt_duration(t.construction));
            est.push(fmt_duration(t.estimation));
        }
        eprintln!("  MM baseline ...");
        let (mm, _) = time_matmul(&a, &b);
        total.push(fmt_duration(mm));
        total_rows.push(total);
        cons_rows.push(cons);
        est_rows.push(est);
    }

    let names: Vec<&str> = estimators.iter().map(|e| e.name()).collect();
    println!();
    println!("Figure 8(a) — total estimation time:");
    let mut headers = vec!["n/sparsity"];
    headers.extend(&names);
    headers.push("MM");
    print_table(&headers, &total_rows);

    println!();
    println!("Figure 8(b) — construction time:");
    let mut headers = vec!["n/sparsity"];
    headers.extend(&names);
    print_table(&headers, &cons_rows);

    println!();
    println!("Figure 8(c) — estimation time:");
    let mut headers = vec!["n/sparsity"];
    headers.extend(&names);
    print_table(&headers, &est_rows);
}
