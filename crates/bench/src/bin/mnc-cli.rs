//! `mnc-cli` — inspect sketches and estimate sparsity from the command
//! line, on MatrixMarket files.
//!
//! ```text
//! mnc-cli sketch <a.mtx>                      # print the MNC sketch summary
//! mnc-cli estimate <a.mtx> <b.mtx> [--op matmul|ewadd|ewmul|ewmax|ewmin]
//!                                  [--exact] [--repeat N] [--threads N] [--json]
//!                                             # all estimators on one op
//! mnc-cli gen <uniform|permutation|nlp> <out.mtx> [rows cols sparsity]
//! mnc-cli catalog add <dir> <a.mtx> [--name NAME]   # build + persist sketch
//! mnc-cli catalog list <dir>                  # list persisted sketches
//! mnc-cli serve --catalog <dir> [--addr HOST:PORT] [--workers N] [--threads N]
//!                               [--queue N] [--slow-threshold MS] [--access-log PATH]
//! mnc-cli top [--addr HOST:PORT] [--interval-ms N] [--once] [--frames N]
//! ```
//!
//! `estimate` runs inside an estimation session: synopses are cached across
//! estimators and repeats, and the session's `EstimationStats` (builds,
//! cache traffic, per-op timings) are printed at the end. `--repeat N`
//! re-estimates N times to show the cache at work. `--json` emits one
//! machine-readable line with full-precision (shortest round-trip)
//! estimates instead of the table — CI diffs these bits against the
//! `mnc-served` HTTP answers.
//!
//! `catalog add` / `catalog list` manage an `mnc-served` synopsis catalog
//! directory offline: sketches added here are served after a daemon start
//! without any rebuild. `serve` runs the daemon in-process (same flags as
//! the standalone `mnc-served` binary).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mnc_core::MncSketch;
use mnc_estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, DynamicDensityMapEstimator,
    HashEstimator, LayeredGraphEstimator, MetaAcEstimator, MetaWcEstimator, MncEstimator, OpKind,
    SparsityEstimator, UnbiasedSamplingEstimator,
};
use mnc_expr::{EstimationContext, ExprDag};
use mnc_matrix::io::{read_matrix_market_file, write_matrix_market_file};
use mnc_matrix::{gen, ops, CsrMatrix};
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sketch") => cmd_sketch(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  mnc-cli sketch <a.mtx>\n  mnc-cli estimate <a.mtx> \
                 <b.mtx> [--op matmul|ewadd|ewmul|ewmax|ewmin] [--exact] [--repeat N]\n    \
                 [--threads N] [--json]\n    \
                 {}\n  \
                 mnc-cli gen <uniform|permutation|nlp> <out.mtx> [rows cols sparsity]\n  \
                 mnc-cli catalog add <dir> <a.mtx> [--name NAME]\n  \
                 mnc-cli catalog list <dir>\n  \
                 mnc-cli serve --catalog <dir> [--addr HOST:PORT] [--workers N] [--threads N]\n    \
                 [--queue N]\n    \
                 [--max-body BYTES] [--flight-capacity N] [--slow-threshold MS] [--access-log PATH]\n  \
                 mnc-cli top [--addr HOST:PORT] [--interval-ms N] [--once] [--frames N]",
                mnc_bench::OBS_USAGE
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<CsrMatrix, String> {
    read_matrix_market_file(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_sketch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sketch: missing file argument")?;
    let m = load(path)?;
    let t = Instant::now();
    let h = MncSketch::build(&m);
    let took = t.elapsed();
    println!(
        "matrix           : {}x{}, nnz {} (sparsity {:.3e})",
        m.nrows(),
        m.ncols(),
        m.nnz(),
        m.sparsity()
    );
    println!("construction     : {took:?}");
    println!("sketch size      : {} B", h.size_bytes());
    println!("max(h^r), max(h^c): {} / {}", h.meta.max_hr, h.meta.max_hc);
    println!(
        "non-empty rows/cols: {} / {}",
        h.meta.nonempty_rows, h.meta.nonempty_cols
    );
    println!(
        "rows/cols with 1 nnz: {} / {}",
        h.meta.rows_eq_1, h.meta.cols_eq_1
    );
    println!(
        "half-full rows/cols: {} / {}",
        h.meta.half_full_rows, h.meta.half_full_cols
    );
    println!("fully diagonal   : {}", h.meta.fully_diagonal);
    println!(
        "extended vectors : {}",
        if h.her.is_some() {
            "built"
        } else {
            "not needed"
        }
    );
    if h.meta.max_hr <= 1 {
        println!("note: max(h^r) <= 1 — products with this matrix on the left are estimated EXACTLY (Theorem 3.1)");
    }
    if h.meta.max_hc <= 1 {
        println!("note: max(h^c) <= 1 — products with this matrix on the right are estimated EXACTLY (Theorem 3.1)");
    }
    Ok(())
}

fn parse_op(name: &str) -> Result<OpKind, String> {
    Ok(match name {
        "matmul" | "mm" => OpKind::MatMul,
        "ewadd" | "+" => OpKind::EwAdd,
        "ewmul" | "*" => OpKind::EwMul,
        "ewmax" | "max" => OpKind::EwMax,
        "ewmin" | "min" => OpKind::EwMin,
        other => return Err(format!("unknown op `{other}`")),
    })
}

fn op_token(op: &OpKind) -> &'static str {
    match op {
        OpKind::MatMul => "matmul",
        OpKind::EwAdd => "ewadd",
        OpKind::EwMul => "ewmul",
        OpKind::EwMax => "ewmax",
        OpKind::EwMin => "ewmin",
        _ => "op",
    }
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let (obs, args) = mnc_bench::ObsArgs::parse(args)?;
    let mut files = Vec::new();
    let mut op = OpKind::MatMul;
    let mut exact = false;
    let mut json = false;
    let mut repeat = 1usize;
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--op" => {
                op = parse_op(it.next().ok_or("--op needs a value")?)?;
            }
            "--exact" => exact = true,
            "--json" => json = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|_| "bad --repeat value")?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad --threads value")?;
            }
            f => files.push(f.to_string()),
        }
    }
    if files.len() != 2 {
        return Err("estimate: expected exactly two .mtx files".into());
    }
    let a = Arc::new(load(&files[0])?);
    let b = Arc::new(load(&files[1])?);

    let estimators: Vec<Box<dyn SparsityEstimator>> = vec![
        Box::new(MetaWcEstimator),
        Box::new(MetaAcEstimator),
        Box::new(BiasedSamplingEstimator::default()),
        Box::new(UnbiasedSamplingEstimator::default()),
        Box::new(HashEstimator::default()),
        Box::new(MncEstimator::basic()),
        Box::new(MncEstimator::new()),
        Box::new(DensityMapEstimator::default()),
        Box::new(DynamicDensityMapEstimator::default()),
        Box::new(BitsetEstimator::default()),
        Box::new(LayeredGraphEstimator::default()),
    ];
    if !json {
        println!(
            "{:<10} {:>14} {:>14} {:>12}",
            "estimator", "estimate s_C", "est. nnz", "time"
        );
    }
    let (rows, cols) = mnc_estimators::OpKind::output_shape(&op, &[a.shape(), b.shape()])
        .map_err(|e| e.to_string())?;
    let mut dag = ExprDag::new();
    let na = dag.leaf(files[0].clone(), Arc::clone(&a));
    let nb = dag.leaf(files[1].clone(), Arc::clone(&b));
    let root = dag.op(op.clone(), &[na, nb]).map_err(|e| e.to_string())?;
    let server = obs.serve()?;
    let mut ctx = EstimationContext::new()
        .with_threads(threads)
        .with_recorder(obs.recorder());
    if let Some(srv) = &server {
        srv.install(ctx.recorder());
    }
    let mut json_estimates = Vec::new();
    for est in &estimators {
        let t = Instant::now();
        let mut outcome = ctx.estimate_root(est, &dag, root);
        for _ in 1..repeat {
            outcome = ctx.estimate_root(est, &dag, root);
        }
        if json {
            json_estimates.push((est.name(), outcome.ok()));
            continue;
        }
        match outcome {
            Ok(s) => println!(
                "{:<10} {:>14.6e} {:>14.0} {:>12?}",
                est.name(),
                s,
                s * rows as f64 * cols as f64,
                t.elapsed()
            ),
            Err(e) => println!("{:<10} {:>14} ({e})", est.name(), "✗"),
        }
    }
    if !json {
        println!("\nestimation session:\n{}", ctx.stats());
    }
    obs.emit(ctx.recorder())?;
    let exact_result = if exact {
        let t = Instant::now();
        let c = match op {
            OpKind::MatMul => ops::bool_matmul(&a, &b),
            OpKind::EwAdd => ops::ew_add(&a, &b),
            OpKind::EwMul => ops::ew_mul(&a, &b),
            OpKind::EwMax => ops::ew_max(&a, &b),
            OpKind::EwMin => ops::ew_min(&a, &b),
            _ => unreachable!("parse_op only yields the above"),
        }
        .map_err(|e| e.to_string())?;
        if !json {
            println!(
                "{:<10} {:>14.6e} {:>14} {:>12?}",
                "EXACT",
                c.sparsity(),
                c.nnz(),
                t.elapsed()
            );
        }
        Some(c.sparsity())
    } else {
        None
    };
    if json {
        // One machine-readable line, full precision: `json_f64` is the
        // shortest round-trip rendering, so the bits survive a parse —
        // this is what CI diffs against the `mnc-served` HTTP answer.
        use mnc_obs::export::{json_escape, json_f64};
        let ests = json_estimates
            .iter()
            .map(|(name, s)| {
                let value = s.map_or_else(|| "null".into(), json_f64);
                format!("\"{}\":{}", json_escape(name), value)
            })
            .collect::<Vec<_>>()
            .join(",");
        let mut line = format!(
            "{{\"files\":[\"{}\",\"{}\"],\"op\":\"{}\",\"shape\":[{rows},{cols}],\"estimates\":{{{ests}}}",
            json_escape(&files[0]),
            json_escape(&files[1]),
            op_token(&op),
        );
        if let Some(s) = exact_result {
            line.push_str(&format!(",\"exact\":{}", json_f64(s)));
        }
        line.push('}');
        println!("{line}");
    }
    if let Some(srv) = server {
        srv.finish();
    }
    Ok(())
}

fn cmd_catalog(args: &[String]) -> Result<(), String> {
    use mnc_served::SynopsisCatalog;
    match args.first().map(String::as_str) {
        Some("add") => {
            let dir = args.get(1).ok_or("catalog add: missing <dir>")?;
            let file = args.get(2).ok_or("catalog add: missing <a.mtx>")?;
            let mut name: Option<String> = None;
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
                    other => return Err(format!("catalog add: unknown argument `{other}`")),
                }
            }
            let name = name.unwrap_or_else(|| {
                std::path::Path::new(file)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("matrix")
                    .to_string()
            });
            let m = load(file)?;
            let sketch = Arc::new(MncSketch::build(&m));
            let mut cat = SynopsisCatalog::open(dir).map_err(|e| e.to_string())?;
            let entry = cat
                .put(&name, Arc::clone(&sketch), true)
                .map_err(|e| e.to_string())?;
            println!(
                "{}",
                mnc_served::proto::matrix_meta_json(&name, &sketch, entry.file_bytes)
            );
            Ok(())
        }
        Some("list") => {
            let dir = args.get(1).ok_or("catalog list: missing <dir>")?;
            let cat = SynopsisCatalog::open(dir).map_err(|e| e.to_string())?;
            println!(
                "{:<24} {:>10} {:>10} {:>12} {:>12} {:>10}",
                "name", "rows", "cols", "nnz", "sparsity", "bytes"
            );
            for (name, entry) in cat.iter() {
                println!(
                    "{:<24} {:>10} {:>10} {:>12} {:>12.3e} {:>10}",
                    name,
                    entry.sketch.nrows,
                    entry.sketch.ncols,
                    entry.sketch.meta.nnz,
                    entry.sketch.sparsity(),
                    entry.file_bytes
                );
            }
            for q in cat.quarantined() {
                eprintln!("warning: quarantined undecodable entry `{q}`");
            }
            Ok(())
        }
        _ => Err(
            "usage: mnc-cli catalog add <dir> <a.mtx> [--name NAME] | catalog list <dir>".into(),
        ),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use mnc_served::{serve_with, EstimationService, ServeOptions, ServedConfig};
    let mut catalog: Option<String> = None;
    let mut addr = "127.0.0.1:9419".to_string();
    let mut workers = 4usize;
    let mut threads = 1usize;
    let mut queue = 8usize;
    let mut max_body = 4usize << 20;
    let mut flight_capacity = 1024usize;
    let mut slow_threshold_ms: Option<u64> = None;
    let mut access_log: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--catalog" => catalog = Some(value("--catalog")?.clone()),
            "--addr" => addr = value("--addr")?.clone(),
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number")?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads: not a number")?
            }
            "--queue" => {
                queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: not a number")?
            }
            "--max-body" => {
                max_body = value("--max-body")?
                    .parse()
                    .map_err(|_| "--max-body: not a number")?
            }
            "--flight-capacity" => {
                flight_capacity = value("--flight-capacity")?
                    .parse()
                    .map_err(|_| "--flight-capacity: not a number")?
            }
            "--slow-threshold" => {
                slow_threshold_ms = Some(
                    value("--slow-threshold")?
                        .parse()
                        .map_err(|_| "--slow-threshold: not a number (ms)")?,
                )
            }
            "--access-log" => access_log = Some(value("--access-log")?.clone()),
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
    }
    let catalog = catalog.ok_or("serve: --catalog is required")?;
    let mut cfg = ServedConfig::new(&catalog);
    cfg.workers = workers;
    cfg.threads = threads;
    cfg.queue = queue;
    cfg.flight_capacity = flight_capacity;
    if let Some(ms) = slow_threshold_ms {
        cfg.slow_threshold = std::time::Duration::from_millis(ms);
    }
    cfg.access_log = access_log.map(std::path::PathBuf::from);
    let service = EstimationService::new(cfg).map_err(|e| e.to_string())?;
    let handle = serve_with(
        service,
        addr.as_str(),
        ServeOptions {
            max_body_bytes: max_body,
        },
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "mnc-cli serve: listening on http://{} (catalog {catalog})",
        handle.local_addr()
    );
    loop {
        std::thread::park();
    }
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let opts = mnc_bench::top::parse_args(args)?;
    mnc_bench::top::run(&opts)
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("gen: missing kind")?;
    let out = args.get(1).ok_or("gen: missing output path")?;
    let rows: usize = args
        .get(2)
        .map_or(Ok(1000), |v| v.parse().map_err(|_| "bad rows"))?;
    let cols: usize = args
        .get(3)
        .map_or(Ok(rows), |v| v.parse().map_err(|_| "bad cols"))?;
    let sparsity: f64 = args
        .get(4)
        .map_or(Ok(0.01), |v| v.parse().map_err(|_| "bad sparsity"))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC11);
    let m = match kind.as_str() {
        "uniform" => gen::rand_uniform(&mut rng, rows, cols, sparsity),
        "permutation" => gen::permutation(&mut rng, rows),
        "nlp" => {
            let counts = vec![1u32; rows];
            gen::rand_with_row_counts(&mut rng, cols, &counts)
        }
        other => return Err(format!("unknown generator `{other}`")),
    };
    write_matrix_market_file(&m, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {}x{} with {} non-zeros",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    Ok(())
}
