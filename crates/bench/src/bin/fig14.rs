//! Figure 14: accuracy for the mixed expressions B3.1 (NLP + reshape),
//! B3.4 (recommendations), and B3.5 (compound boolean predicate).
//!
//! These chains mix products, element-wise operations, and reorganizations,
//! so the layered graph does not apply; the bitset runs under a memory
//! budget (the paper's ultra-sparse B3.1/B3.4 inputs needed 7.8/2.3 TB).

use mnc_bench::{banner, env_scale, print_accuracy_matrix};
use mnc_estimators::{
    BitsetEstimator, DensityMapEstimator, MetaAcEstimator, MetaWcEstimator, MncEstimator,
    SparsityEstimator,
};
use mnc_sparsest::datasets::Datasets;
use mnc_sparsest::runner::run_case;
use mnc_sparsest::usecases::b3_suite;

fn main() {
    let scale = env_scale(1.0);
    banner(
        "Figure 14",
        "Accuracy for B3 Chain (B3.1, B3.4, B3.5)",
        &format!(
            "Dataset substitutes at scale {scale}; bitset under a 64 MB \
             synopsis budget (paper: 7.8 TB / 2.3 TB needed for B3.1/B3.4)."
        ),
    );
    let data = Datasets::with_scale(0xDA7A, scale);
    let meta_wc = MetaWcEstimator;
    let meta_ac = MetaAcEstimator;
    let mnc_basic = MncEstimator::basic();
    let mnc = MncEstimator::new();
    let dmap = DensityMapEstimator::default();
    let bitset = BitsetEstimator::with_memory_limit(64 << 20);
    let refs: Vec<&dyn SparsityEstimator> =
        vec![&meta_wc, &meta_ac, &mnc_basic, &mnc, &dmap, &bitset];
    let names: Vec<&str> = refs.iter().map(|e| e.name()).collect();

    let mut results = Vec::new();
    for case in b3_suite(&data) {
        if matches!(case.id.as_str(), "B3.1" | "B3.4" | "B3.5") {
            eprintln!("running {} {} ...", case.id, case.name);
            results.extend(run_case(&case, &refs));
        }
    }
    print_accuracy_matrix(&results, &names);
    println!();
    println!(
        "paper reference: B3.1 behaves like B2.1 (reshape is \
         sparsity-preserving, MNC exact); B3.4 exact for MNC (aligned \
         element-wise non-zeros), MetaAC/DMap fail to see the alignment; \
         B3.5 MNC 1.33 vs MetaWC 2.13, MetaAC 2.87, DMap 2.71; Bitset ✗ \
         on B3.1/B3.4."
    );
}
