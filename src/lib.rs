//! # mnc — facade crate
//!
//! Reproduction of *MNC: Structure-Exploiting Sparsity Estimation for Matrix
//! Expressions* (Sommer, Boehm, Evfimievski, Reinwald, Haas — SIGMOD 2019).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`matrix`] — sparse-matrix substrate (formats, exact kernels, seeded
//!   generators);
//! * [`core`] — the MNC sketch, its product estimator, and sketch
//!   propagation for all supported operations;
//! * [`estimators`] — every baseline estimator from the paper behind a
//!   common trait (metadata, bitset, density map, sampling, hashing,
//!   layered graph) plus the MNC adapter;
//! * [`expr`] — expression DAGs, generic sketch propagation, and the
//!   sparsity-aware matrix-chain optimizer (Appendix C);
//! * [`sparsest`] — the SparsEst benchmark (Section 5): use cases, dataset
//!   substitutes, and accuracy/runtime metrics;
//! * [`obs`] — zero-dependency observability: hierarchical spans, a
//!   metrics registry, accuracy telemetry, and exporters (human table,
//!   JSONL, Chrome `trace_event` JSON for Perfetto).
//!
//! Beyond the paper's evaluation, the workspace implements its future-work
//! items: distributed sketch construction over partitioned matrices with a
//! binary wire format ([`core::build_distributed`], [`core::to_bytes`]),
//! confidence intervals ([`core::estimate_matmul_ci`]), element-wise
//! `max`/`min` and diagonal-extraction operations, a dynamic quad-tree
//! density map ([`estimators::DynamicDensityMapEstimator`]), a DAG-level
//! chain rewrite pass ([`expr::rewrite_mm_chains`]), and a physical planner
//! ([`expr::Planner`]).
//!
//! ## Quickstart
//!
//! ```
//! use mnc::core::{MncSketch, OpKind};
//! use mnc::matrix::{gen, ops};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let a = gen::rand_uniform(&mut rng, 500, 300, 0.01);
//! let b = gen::rand_uniform(&mut rng, 300, 400, 0.05);
//!
//! // Build MNC sketches (O(nnz + m + n)) and estimate the product sparsity.
//! let ha = MncSketch::build(&a);
//! let hb = MncSketch::build(&b);
//! let estimate = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap();
//!
//! // Compare against the exact output sparsity.
//! let c = ops::matmul(&a, &b).unwrap();
//! let err = mnc::sparsest::metrics::relative_error(c.sparsity(), estimate);
//! assert!(err < 1.5, "relative error was {err}");
//! ```

pub use mnc_core as core;
pub use mnc_estimators as estimators;
pub use mnc_expr as expr;
pub use mnc_matrix as matrix;
pub use mnc_obs as obs;
pub use mnc_served as served;
pub use mnc_sparsest as sparsest;
