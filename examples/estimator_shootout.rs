//! Run every estimator in the repository over one realistic expression and
//! print estimate, error, synopsis size, and time — a one-screen version of
//! the paper's evaluation.
//!
//! The expression is B3.4-style: `(P X != 0) ⊙ (P L Rᵀ)` — predicted
//! recommendations for the known ratings of the most active users.
//!
//! ```text
//! cargo run --example estimator_shootout --release
//! ```

use std::sync::Arc;
use std::time::Instant;

use mnc::estimators::{
    BiasedSamplingEstimator, BitsetEstimator, DensityMapEstimator, LayeredGraphEstimator,
    MetaAcEstimator, MetaWcEstimator, MncEstimator, SparsityEstimator, UnbiasedSamplingEstimator,
};
use mnc::expr::{estimate_root, Evaluator, ExprDag, OpKind};
use mnc::matrix::gen;
use mnc::sparsest::datasets::Datasets;
use mnc::sparsest::metrics::relative_error;
use mnc::sparsest::usecases::top_rows_by_nnz;
use rand::SeedableRng;

fn main() {
    let data = Datasets::with_scale(0xDA7A, 0.25);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    // Build the recommendation expression.
    let x = Arc::new(data.amazon());
    let (users, items) = x.shape();
    let p = gen::selection_matrix(&top_rows_by_nnz(&x, users / 10), users);
    let l = gen::rand_uniform(&mut rng, users, 16, 0.95);
    let r = gen::rand_uniform(&mut rng, items, 16, 0.85);

    let mut dag = ExprDag::new();
    let np = dag.leaf("P", Arc::new(p));
    let nx = dag.leaf("X", x);
    let nl = dag.leaf("L", Arc::new(l));
    let nr = dag.leaf("R", Arc::new(r));
    let px = dag.matmul(np, nx).expect("shapes agree");
    let mask = dag.op(OpKind::Neq0, &[px]).expect("unary");
    let pl = dag.matmul(np, nl).expect("shapes agree");
    let rt = dag.transpose(nr).expect("unary");
    let plr = dag.matmul(pl, rt).expect("shapes agree");
    let root = dag.ew_mul(mask, plr).expect("shapes agree");
    println!(
        "expression: (P X != 0) ⊙ (P L Rᵀ) over {}x{} ratings",
        users, items
    );

    let truth = Evaluator::new().sparsity(&dag, root).expect("evaluates");
    println!("exact output sparsity: {truth:.6}\n");

    let estimators: Vec<Box<dyn SparsityEstimator>> = vec![
        Box::new(MetaWcEstimator),
        Box::new(MetaAcEstimator),
        Box::new(BiasedSamplingEstimator::default()),
        Box::new(UnbiasedSamplingEstimator::default()),
        Box::new(MncEstimator::basic()),
        Box::new(MncEstimator::new()),
        Box::new(DensityMapEstimator::default()),
        Box::new(BitsetEstimator::default()),
        Box::new(LayeredGraphEstimator::default()),
    ];

    println!(
        "{:<10} {:>12} {:>10} {:>12}",
        "estimator", "estimate", "rel.err", "time"
    );
    for est in &estimators {
        let t = Instant::now();
        match estimate_root(est.as_ref(), &dag, root) {
            Ok(s) => println!(
                "{:<10} {:>12.6} {:>10.3} {:>12?}",
                est.name(),
                s,
                relative_error(truth, s),
                t.elapsed()
            ),
            Err(e) => println!("{:<10} {:>12} ({e})", est.name(), "✗"),
        }
    }
}
