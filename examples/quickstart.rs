//! Quickstart: build MNC sketches for two sparse matrices, estimate the
//! sparsity of their product, and compare against the exact result.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use mnc::core::{MncSketch, OpKind};
use mnc::matrix::{gen, ops};
use mnc::sparsest::metrics::relative_error;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // Two random sparse matrices: A is 5000 x 2000 at 1% density,
    // B is 2000 x 3000 at 5%.
    let a = gen::rand_uniform(&mut rng, 5_000, 2_000, 0.01);
    let b = gen::rand_uniform(&mut rng, 2_000, 3_000, 0.05);
    println!("A: {}x{}, nnz {}", a.nrows(), a.ncols(), a.nnz());
    println!("B: {}x{}, nnz {}", b.nrows(), b.ncols(), b.nnz());

    // Sketch construction is one pass over the non-zeros: O(nnz + m + n).
    let t = std::time::Instant::now();
    let ha = MncSketch::build(&a);
    let hb = MncSketch::build(&b);
    println!(
        "sketches built in {:?} ({} B + {} B)",
        t.elapsed(),
        ha.size_bytes(),
        hb.size_bytes()
    );

    // Estimation is O(n) in the common dimension.
    let t = std::time::Instant::now();
    let estimate = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).expect("shapes agree");
    println!("estimated s_C = {estimate:.6}  (in {:?})", t.elapsed());

    // Ground truth via an actual sparse product.
    let t = std::time::Instant::now();
    let c = ops::matmul(&a, &b).expect("shapes agree");
    println!(
        "exact     s_C = {:.6}  (matmul took {:?})",
        c.sparsity(),
        t.elapsed()
    );
    println!(
        "relative error max(s,ŝ)/min(s,ŝ) = {:.4}",
        relative_error(c.sparsity(), estimate)
    );

    // Structural properties make the estimate *exact*: one non-zero per
    // row on the left operand triggers Theorem 3.1.
    let p = gen::permutation(&mut rng, 5_000);
    let hp = MncSketch::build(&p);
    let est = MncSketch::estimate(&OpKind::MatMul, &[&hp, &ha_like(&a)]).expect("shapes agree");
    println!(
        "\npermutation x A: estimated s = {est:.6} (exact: {:.6})",
        a.sparsity()
    );
}

/// Rebuild A's sketch (helper to keep the example flow linear).
fn ha_like(a: &mnc::matrix::CsrMatrix) -> MncSketch {
    MncSketch::build(a)
}
