//! Sparsity-aware matrix-multiplication chain optimization (Appendix C):
//! optimize a product chain once with classic dense FLOP costs and once
//! with MNC-sketch costs, then execute both plans and compare the *actual*
//! multiplication counts.
//!
//! ```text
//! cargo run --example chain_optimizer --release
//! ```

use std::sync::Arc;

use mnc::core::{MncConfig, MncSketch};
use mnc::expr::{chain_flops_exact, dense_chain_order, sparse_chain_order, PlanTree};
use mnc::matrix::gen;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // A chain where the dense optimizer is misled: the large 1500 x 1500
    // matrix in the middle is ultra-sparse, so multiplying through it first
    // is nearly free — but by dimensions alone it looks expensive.
    let dims = [400usize, 1_500, 1_500, 300, 60];
    let sparsities = [0.2, 0.0005, 0.3, 0.25];
    let mats: Vec<Arc<_>> = dims
        .windows(2)
        .zip(&sparsities)
        .map(|(w, &s)| Arc::new(gen::rand_uniform(&mut rng, w[0], w[1], s)))
        .collect();
    for (i, m) in mats.iter().enumerate() {
        println!(
            "M{i}: {}x{} sparsity {:.4} (nnz {})",
            m.nrows(),
            m.ncols(),
            m.sparsity(),
            m.nnz()
        );
    }

    // Optimize.
    let (dense_cost, dense_plan) = dense_chain_order(&dims);
    let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
    let (sparse_cost, sparse_plan) = sparse_chain_order(&sketches, &MncConfig::default());

    println!("\ndense-cost DP   : plan {dense_plan}   (predicted dense FLOPs {dense_cost:.2e})");
    println!("sparse-cost DP  : plan {sparse_plan}   (predicted sparse FLOPs {sparse_cost:.2e})");

    // Execute all three plans for real and count multiplications.
    let left_deep = PlanTree::left_deep(mats.len());
    for (label, plan) in [
        ("left-deep", &left_deep),
        ("dense-optimal", &dense_plan),
        ("sparse-optimal", &sparse_plan),
    ] {
        let flops = chain_flops_exact(&mats, plan);
        println!("actual sparse multiplications, {label:>14}: {flops:>12}  {plan}");
    }

    let dense_actual = chain_flops_exact(&mats, &dense_plan);
    let sparse_actual = chain_flops_exact(&mats, &sparse_plan);
    println!(
        "\nsparsity-aware plan does {:.2}x less work than the dense-cost plan",
        dense_actual as f64 / sparse_actual as f64
    );
    assert!(sparse_actual <= dense_actual);
}
