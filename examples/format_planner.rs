//! Physical planning from sparsity estimates: format decisions, memory
//! pre-allocation, and FLOP costs for a whole expression DAG — plus
//! distributed sketch construction on a row-partitioned input.
//!
//! ```text
//! cargo run --example format_planner --release
//! ```

use std::sync::Arc;

use mnc::core::{build_distributed, estimate_matmul_ci, MncConfig, MncSketch};
use mnc::estimators::{MetaAcEstimator, MncEstimator};
use mnc::expr::{ExprDag, Format, Planner};
use mnc::matrix::partition::RowPartitionedMatrix;
use mnc::matrix::CsrMatrix;
use mnc::sparsest::usecases::nlp_pair;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);

    // An NLP scoring expression: (S W) reshaped to sentences, masked by a
    // selection, at "driver" scale.
    let (tokens, embeddings) = nlp_pair(&mut rng, 30_000, 10_000, 80, 0.05);

    // --- Distributed sketch construction (the Section 3.1 note) --------
    let partitioned = RowPartitionedMatrix::from_matrix(&tokens, 8);
    let t = std::time::Instant::now();
    let distributed_sketch = build_distributed(&partitioned);
    println!(
        "distributed sketch over {} partitions in {:?} (nnz {})",
        partitioned.num_partitions(),
        t.elapsed(),
        distributed_sketch.meta.nnz
    );
    let local_sketch = MncSketch::build(&tokens);
    assert_eq!(distributed_sketch, local_sketch);
    println!("distributed == local construction: verified\n");

    // --- Confidence interval on a product estimate ----------------------
    let hw = MncSketch::build(&embeddings);
    let ci = estimate_matmul_ci(&local_sketch, &hw, &MncConfig::default(), 0.95);
    println!(
        "S·W sparsity estimate: {:.5} (95% CI [{:.5}, {:.5}], exact: {})\n",
        ci.estimate, ci.lower, ci.upper, ci.exact
    );

    // --- Whole-DAG planning ---------------------------------------------
    let mut dag = ExprDag::new();
    let s = dag.leaf("S", Arc::new(tokens));
    let w = dag.leaf("W", Arc::new(embeddings));
    let sw = dag.matmul(s, w).expect("shapes agree");
    let sentences = dag
        .reshape(sw, 30_000 / 10, 80 * 10)
        .expect("cell counts agree");

    let planner = Planner::default();
    for (label, plan) in [
        ("MNC", planner.plan(&MncEstimator::new(), &dag).unwrap()),
        ("MetaAC", planner.plan(&MetaAcEstimator, &dag).unwrap()),
    ] {
        let out = plan.node(sentences);
        println!(
            "{label:>7} plan: output s = {:.4}, format {:?}, {:.2} MB, \
             total {:.2} MFLOPs, total memory {:.2} MB",
            out.sparsity,
            out.format,
            out.memory_bytes / 1e6,
            plan.total_flops / 1e6,
            plan.total_memory_bytes / 1e6
        );
    }

    // The punchline: with one non-zero per token row, MNC knows the output
    // stays sparse; a uniformity-assuming estimator can flip the decision
    // and over-allocate.
    let mnc_plan = planner.plan(&MncEstimator::new(), &dag).unwrap();
    assert_eq!(mnc_plan.node(sentences).format, Format::SparseCsr);

    // --- Format decision driving a real allocation -----------------------
    let chosen = mnc_plan.node(sentences);
    let dense_bytes = chosen.shape.0 as f64 * chosen.shape.1 as f64 * 8.0;
    println!(
        "\nallocating output as {:?}: {:.2} MB instead of {:.2} MB dense \
         ({:.0}x saved)",
        chosen.format,
        chosen.memory_bytes / 1e6,
        dense_bytes / 1e6,
        dense_bytes / chosen.memory_bytes
    );

    // Sanity: the estimate agrees with real execution.
    let exact: CsrMatrix = {
        let mut ev = mnc::expr::Evaluator::new();
        (*ev.eval(&dag, sentences).expect("evaluates")).clone()
    };
    println!(
        "exact output sparsity {:.4} (estimate was {:.4})",
        exact.sparsity(),
        mnc_plan.node(sentences).sparsity
    );
}
