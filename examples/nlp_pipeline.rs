//! The paper's Figure 1 scenario end-to-end: encoding a token sequence into
//! word embeddings and reshaping to sentence embeddings —
//! `reshape(S W)` — with sparsity estimation driving the memory
//! pre-allocation decision.
//!
//! ```text
//! cargo run --example nlp_pipeline --release
//! ```

use std::sync::Arc;

use mnc::estimators::{MetaAcEstimator, MncEstimator};
use mnc::expr::{estimate_root, Evaluator, ExprDag};
use mnc::sparsest::usecases::nlp_pair;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // 20,000 token positions (sentences padded to length 10), a 8,000-word
    // dictionary, 64-dimensional embeddings; only 2% of positions hold a
    // known token — the rest are pads mapping to the "unknown" column.
    let (tokens, embeddings) = nlp_pair(&mut rng, 20_000, 8_000, 64, 0.02);
    println!(
        "token matrix S: {}x{} with one non-zero per row (nnz = {})",
        tokens.nrows(),
        tokens.ncols(),
        tokens.nnz()
    );
    println!(
        "embeddings  W: {}x{} (dense, empty last row)",
        embeddings.nrows(),
        embeddings.ncols()
    );

    // Build the expression reshape(S W): 10 token rows -> 1 sentence row.
    let mut dag = ExprDag::new();
    let s = dag.leaf("S", Arc::new(tokens));
    let w = dag.leaf("W", Arc::new(embeddings));
    let sw = dag.matmul(s, w).expect("shapes agree");
    let sentences = dag
        .reshape(sw, 20_000 / 10, 64 * 10)
        .expect("cell counts agree");

    // Estimate the output sparsity before executing anything.
    let mnc = MncEstimator::new();
    let est = estimate_root(&mnc, &dag, sentences).expect("all ops supported");
    let naive = estimate_root(&MetaAcEstimator, &dag, sentences).expect("supported");

    // Use the estimate for a format/allocation decision (the paper's
    // primary runtime application): SystemML switches to dense formats
    // above sparsity 0.4.
    let (rows, cols) = dag.shape(sentences);
    let est_nnz = est * rows as f64 * cols as f64;
    let sparse_bytes = est_nnz * 12.0; // 4 B column index + 8 B value
    let dense_bytes = rows as f64 * cols as f64 * 8.0;
    println!(
        "\nMNC estimate    : s = {est:.4} (~{:.1} MB sparse vs {:.1} MB dense)",
        sparse_bytes / 1e6,
        dense_bytes / 1e6
    );
    println!("MetaAC estimate : s = {naive:.4}");
    println!(
        "allocation      : {}",
        if est < 0.4 { "CSR (sparse)" } else { "dense" }
    );

    // Verify against real execution.
    let truth = Evaluator::new()
        .sparsity(&dag, sentences)
        .expect("expression evaluates");
    println!("\nexact output sparsity = {truth:.4}");
    println!(
        "MNC is near-exact here: one non-zero per row of S makes the product \
         estimate exact (Theorem 3.1); only the unbiased probabilistic \
         rounding of the propagated sketch adds noise: |{est:.6} - {truth:.6}| \
         = {:.1e}",
        (est - truth).abs()
    );
    assert!((est - truth).abs() / truth < 1e-2);
}
